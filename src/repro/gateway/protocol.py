"""The gateway wire protocol: framing and handshake, sans-IO.

Everything that crosses a gateway socket is a *frame*: a 4-byte
big-endian unsigned payload length followed by that many bytes of UTF-8
JSON encoding one ``dict`` document. Two document schemas travel inside
frames:

* ``repro.gateway`` v1 — connection lifecycle: the client's ``hello``
  (advertising the :mod:`repro.api` wire versions it speaks, plus any
  optional *features* it can handle — today ``"pipeline"``, the
  capability bit for out-of-order responses), the server's ``welcome``
  (the negotiated version, the accepted feature subset and a session
  id), and ``goodbye`` in either direction;
* ``repro.api`` v1 — every request/response after the handshake is the
  unmodified :func:`repro.api.to_wire` document; failures come back as
  the api ``error`` kind (:class:`~repro.api.messages.ErrorInfo`), so
  the error envelope *is* the existing structured error taxonomy.

Frame *payloads* come in two codecs. ``json`` is the v1 baseline: UTF-8
JSON text, spoken by every peer. ``bin1`` is a struct-packed binary
form (see :mod:`repro.gateway.codec`) negotiated via the handshake
feature list as ``codec:bin1`` — a session's codec is decided by the
welcome and never switches mid-stream; hello/welcome themselves are
always JSON because they travel before the decision. The two codecs are
distinguishable from the first payload byte (:data:`BIN1_MAGIC` can
never begin a JSON document), which is what lets a mixed-codec mesh
share one :class:`FrameDecoder`.

This module is deliberately socket-free: :func:`encode_frame`,
:class:`FrameDecoder` and the handshake builders/parsers operate on
bytes and dicts only, which is what lets the fuzz suite drive them with
junk, truncated and oversized input without a running server. Every
malformed input maps to a stable :mod:`repro.api.errors` code —
``invalid-request`` for framing/structure damage, ``unsupported-version``
for version skew — never a bare ``KeyError``/``UnicodeDecodeError``.
"""

from __future__ import annotations

import json
import re
import struct

from ..api.errors import UnsupportedVersion, ValidationFailed
from ..api.messages import WIRE_VERSION

__all__ = [
    "GATEWAY_SCHEMA",
    "GATEWAY_VERSION",
    "HEADER",
    "MAX_FRAME_BYTES",
    "PIPELINE_FEATURE",
    "TRACE_FEATURE",
    "MESH_WORKER_ROLE",
    "JSON_CODEC",
    "BIN1_CODEC",
    "BIN1_MAGIC",
    "BIN1_WIRE_VERSION",
    "GENERIC_TAG",
    "REGISTER_WORKER_TAG",
    "SUBMIT_TASK_TAG",
    "FLUSH_TAG",
    "GET_REPORT_TAG",
    "BATCH_TAG",
    "ENVELOPE_TAG",
    "STREAM_BATCH_TAG",
    "STREAM_RESULT_TAG",
    "PACKED_DOC_TAG",
    "WORKER_REGISTERED_TAG",
    "TASK_DECISION_TAG",
    "FLUSHED_TAG",
    "BATCH_RESULT_TAG",
    "ENVELOPE_RESULT_TAG",
    "ERROR_TAG",
    "codec_feature",
    "offered_codecs",
    "negotiate_codec",
    "granted_codec",
    "check_frame_length",
    "encode_frame",
    "payload_frame",
    "decode_payload",
    "FrameDecoder",
    "hello_doc",
    "welcome_doc",
    "goodbye_doc",
    "is_gateway_doc",
    "parse_features",
    "parse_hello",
    "parse_welcome",
    "negotiate_version",
    "role_feature",
    "peer_role",
    "family_features",
    "advertised_families",
]

GATEWAY_SCHEMA = "repro.gateway"
GATEWAY_VERSION = 1

#: Session feature: the client accepts responses in completion order
#: (it matches them back by stream-envelope ``seq``), so the server may
#: read ahead and answer frames out of order. Off means the strict
#: request/response discipline of protocol v1 without features.
PIPELINE_FEATURE = "pipeline"

#: Session feature: request envelopes may carry a top-level ``trace``
#: dict (``{"trace_id", "span_id"}``, see :mod:`repro.obs.trace`) and
#: the server links its dispatch spans under it. Granted only when the
#: client offers it AND the server has tracing enabled; pre-feature
#: peers never see the key (api ``from_wire`` ignores unknown top-level
#: keys anyway), and malformed contexts degrade to untraced requests.
TRACE_FEATURE = "trace"

#: Peer role advertised by a mesh worker's hello: the connection is not
#: an api client asking for assignments but a shard host offering to
#: serve them (see :mod:`repro.mesh`). Roles ride the feature list, so
#: role-less peers and role-unaware servers interoperate untouched.
MESH_WORKER_ROLE = "mesh-worker"

_ROLE_PREFIX = "role:"
_FAMILY_PREFIX = "family:"
_CODEC_PREFIX = "codec:"

# ------------------------------------------------------------------ #
# codecs (lint RL403: codec names and bin1 tags live here, only here) #
# ------------------------------------------------------------------ #

#: The v1 baseline payload codec: UTF-8 JSON text. Every peer speaks it
#: and every session starts in it; it is never advertised (absence of a
#: ``codec:`` grant *means* json), so pre-feature peers are simply
#: json-codec peers.
JSON_CODEC = "json"

#: The struct-packed binary payload codec (:mod:`repro.gateway.codec`).
#: Offered by a client as the ``codec:bin1`` feature; granted back by
#: the server when it supports it. Fixed for the session at welcome.
BIN1_CODEC = "bin1"

#: First payload byte of every bin1 frame. 0xB1 is an invalid UTF-8
#: leading byte, so no JSON payload can start with it — the codecs are
#: sniffable from one byte, which keeps mixed-codec meshes decodable.
BIN1_MAGIC = 0xB1

#: bin1 layout version (second payload byte). Bumped only for
#: incompatible layout changes; a new layout is a new codec name.
BIN1_WIRE_VERSION = 1

#: bin1 frame tags (third payload byte): which body layout follows.
#: ``GENERIC_TAG`` wraps the whole document as embedded JSON — the
#: total fallback that keeps bin1 sessions able to carry any document
#: (reports, traced envelopes, mesh ops) without a json downgrade.
GENERIC_TAG = 0x00
REGISTER_WORKER_TAG = 0x01
SUBMIT_TASK_TAG = 0x02
FLUSH_TAG = 0x03
GET_REPORT_TAG = 0x04
BATCH_TAG = 0x05
ENVELOPE_TAG = 0x06
#: Columnar stream window: a batch whose items are all envelopes
#: wrapping register/submit events, packed as fixed-width rows (one
#: struct row per event, no per-item nesting). Produced only by the
#: object-level stream fast path (:func:`repro.gateway.codec
#: .encode_stream_batch`); every bin1 decoder accepts it.
STREAM_BATCH_TAG = 0x07
WORKER_REGISTERED_TAG = 0x11
TASK_DECISION_TAG = 0x12
FLUSHED_TAG = 0x13
BATCH_RESULT_TAG = 0x15
ENVELOPE_RESULT_TAG = 0x16
ERROR_TAG = 0x17
#: Columnar mirror of :data:`STREAM_BATCH_TAG` for the response
#: direction: a batch_result of envelope_results wrapping
#: worker_registered / task_decision rows.
STREAM_RESULT_TAG = 0x18
#: Whole document as a self-describing packed value tree (varint ints,
#: raw f64s, homogeneous f64 arrays) instead of embedded JSON text.
#: Carries exactly the JSON data model, so it is a drop-in replacement
#: for :data:`GENERIC_TAG` on big numeric documents — checkpoint
#: snapshots and delta chains — where decimal text dominates the frame.
#: Produced only on request (``encode_frame(..., packed=True)``); every
#: bin1 decoder accepts it.
PACKED_DOC_TAG = 0x19

#: Frame header: one big-endian u32 payload length.
HEADER = struct.Struct(">I")

#: Hard frame ceiling. Reports for thousands of shards fit in well under
#: a megabyte; anything near this limit is a protocol error or an attack.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def check_frame_length(length: int, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Validate a decoded length prefix — the one copy of the rule.

    Every reader of the length header (the sans-IO decoder, the server's
    stream reader, the client transport) funnels through here, so the
    valid range cannot drift between them.
    """
    if length == 0 or length > max_frame_bytes:
        raise ValidationFailed(
            f"frame of {length} bytes outside the valid range "
            f"1..{max_frame_bytes}"
        )


def encode_frame(
    doc: dict,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    codec: str = JSON_CODEC,
    packed: bool = False,
) -> bytes:
    """Serialize one document to a length-prefixed frame.

    ``codec`` is the *session's* negotiated codec; handshake frames are
    sent before negotiation and always travel as json. ``packed`` asks a
    bin1 session to try the :data:`PACKED_DOC_TAG` value-tree layout
    first — the win for numeric-heavy documents like checkpoint
    snapshots — falling back to the ordinary encoding when the document
    does not fit the JSON data model exactly (and doing nothing at all
    on json sessions, where the request is meaningless). The outbound
    frame ceiling is enforced here exactly like the inbound one
    (:func:`check_frame_length`), so an oversize response surfaces as a
    structured :class:`~repro.api.errors.ValidationFailed` the caller
    can answer with — never as a silently-violated protocol invariant.
    """
    if codec == BIN1_CODEC:
        from .codec import encode_bin1, encode_packed

        payload = encode_packed(doc) if packed else None
        if payload is None:
            payload = encode_bin1(doc)
    elif codec == JSON_CODEC:
        payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    else:
        raise ValueError(f"unknown frame codec {codec!r}")
    return payload_frame(payload, max_frame_bytes=max_frame_bytes)


def payload_frame(
    payload: bytes, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Prefix an already-encoded payload with its length header.

    The outbound twin of :func:`check_frame_length` — every producer of
    a frame (doc encoding above, the object-level stream fast path)
    funnels through here so the outbound ceiling cannot drift either.
    """
    if len(payload) > max_frame_bytes:
        raise ValidationFailed(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload, *, codec: str | None = None) -> dict:
    """Parse one frame payload; structured failure on any damage.

    ``payload`` may be ``bytes`` or a ``memoryview`` (the zero-copy
    path). The codec is sniffed from the first byte — 0xB1 can never
    begin JSON — unless ``codec`` pins the session's negotiated codec,
    in which case a frame in the *other* codec is a protocol violation
    (sessions never switch codec mid-stream) and fails structured.
    """
    if len(payload) == 0:
        raise ValidationFailed("empty frame payload")
    binary = payload[0] == BIN1_MAGIC
    if codec == JSON_CODEC and binary:
        raise ValidationFailed("binary frame on a json-codec session")
    if codec == BIN1_CODEC and not binary:
        raise ValidationFailed("json frame on a bin1-codec session")
    if binary:
        from .codec import decode_bin1

        return decode_bin1(payload)
    try:
        doc = json.loads(str(payload, "utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValidationFailed(
            f"frame payload is not valid JSON: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(doc, dict):
        raise ValidationFailed(
            f"frame payload must encode an object, got {type(doc).__name__}"
        )
    return doc


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    Feed it whatever the transport produced — half a header, three frames
    at once — and it yields complete documents as they close. Length
    damage (zero or oversized prefixes) and payload damage (junk bytes,
    invalid JSON) raise :class:`~repro.api.errors.ValidationFailed`; a
    raising decoder is poisoned and the connection it served cannot be
    resynchronized (the length prefix that framed the stream is the thing
    that lied).
    """

    def __init__(
        self,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        codec: str | None = None,
    ) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        #: Pinned session codec, or ``None`` to sniff per frame (what a
        #: mixed-codec mesh coordinator needs: the welcome it just sent
        #: is json while ops glued behind it may already be bin1).
        self.codec = codec
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes received but not yet closing a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return every frame it completed, in order.

        Decodes straight out of the receive buffer through a
        ``memoryview`` — payload bytes are never copied into an
        intermediate ``bytes`` object (bin1 fields are unpacked in
        place; json is decoded to ``str`` directly from the view).
        """
        self._buf += data
        frames: list[dict] = []
        consumed = 0
        clean = False
        view = memoryview(self._buf)
        try:
            total = len(view)
            while total - consumed >= HEADER.size:
                (length,) = HEADER.unpack_from(view, consumed)
                check_frame_length(length, max_frame_bytes=self.max_frame_bytes)
                start = consumed + HEADER.size
                if total - start < length:
                    break
                # consume first (matching the pre-zero-copy decoder: a
                # frame whose payload fails decode is still drained)
                consumed = start + length
                frames.append(
                    decode_payload(view[start:consumed], codec=self.codec)
                )
            clean = True
        finally:
            # Exports must go before the bytearray can shrink. On the
            # raising path the in-flight traceback still pins a payload
            # sub-view, so the buffer is rebuilt instead of resized (a
            # raising decoder is poisoned anyway; this just keeps the
            # buffer object coherent for check_eof).
            view.release()
            if consumed:
                if clean:
                    del self._buf[:consumed]
                else:
                    self._buf = bytearray(self._buf[consumed:])
        return frames

    def check_eof(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call when the transport reports EOF: leftover buffered bytes mean
        the peer died (or was cut) mid-frame — a truncated frame, which
        must surface as a structured error, not silence.
        """
        if self._buf:
            raise ValidationFailed(
                f"connection ended mid-frame with {len(self._buf)} "
                "buffered bytes"
            )


# --------------------------------------------------------------------- #
# handshake documents                                                    #
# --------------------------------------------------------------------- #


def _gateway_doc(kind: str, body: dict) -> dict:
    return {
        "schema": GATEWAY_SCHEMA,
        "version": GATEWAY_VERSION,
        "kind": kind,
        "body": body,
    }


def hello_doc(
    api_versions=(WIRE_VERSION,),
    client: str = "repro.gateway.remote",
    features=(),
) -> dict:
    """The client's opening frame: api wire versions + optional features."""
    return _gateway_doc(
        "hello",
        {
            "api_versions": [int(v) for v in api_versions],
            "client": str(client),
            "features": [str(f) for f in features],
        },
    )


def welcome_doc(
    api_version: int, backend: str, session: int, features=()
) -> dict:
    """The server's handshake answer: negotiated version + accepted
    features + session id."""
    return _gateway_doc(
        "welcome",
        {
            "api_version": int(api_version),
            "backend": str(backend),
            "session": int(session),
            "features": [str(f) for f in features],
        },
    )


def goodbye_doc(reason: str = "") -> dict:
    """A polite close, sent by either side (server: on graceful drain)."""
    return _gateway_doc("goodbye", {"reason": str(reason)})


def is_gateway_doc(doc) -> bool:
    """Whether ``doc`` belongs to the gateway (vs api) schema."""
    return isinstance(doc, dict) and doc.get("schema") == GATEWAY_SCHEMA


#: The complete v1 gateway envelope. Top-level is frozen — the *body*
#: (and its feature list) is the extension point — so unknown top-level
#: keys are junk, not forward compatibility, and are rejected.
_ENVELOPE_KEYS = frozenset({"schema", "version", "kind", "body"})


def _check_gateway_envelope(doc: dict, kind: str) -> dict:
    if not isinstance(doc, dict):
        raise ValidationFailed(
            f"handshake document must be an object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema != GATEWAY_SCHEMA:
        raise UnsupportedVersion(
            f"foreign handshake schema {schema!r} "
            f"(this gateway speaks {GATEWAY_SCHEMA!r})"
        )
    version = doc.get("version")
    if not isinstance(version, int) or version < 1 or version > GATEWAY_VERSION:
        raise UnsupportedVersion(
            f"gateway protocol version {version!r} outside supported "
            f"range 1..{GATEWAY_VERSION}"
        )
    unknown = set(doc) - _ENVELOPE_KEYS
    if unknown:
        raise ValidationFailed(
            f"unknown handshake fields {sorted(map(repr, unknown))}; "
            "the v1 envelope is schema/version/kind/body"
        )
    if doc.get("kind") != kind:
        raise ValidationFailed(
            f"expected a {kind!r} handshake frame, got {doc.get('kind')!r}"
        )
    body = doc.get("body")
    if not isinstance(body, dict):
        raise ValidationFailed("handshake body must be an object")
    return body


def negotiate_version(client_versions) -> int:
    """Pick the highest api wire version both sides speak.

    The server side of schema-version negotiation: the client advertises
    everything it can parse, the server owns the decision. No overlap is
    an ``unsupported-version`` failure, answered before any api document
    is interpreted.
    """
    # strings are iterable and would "negotiate" from their digit
    # characters; only genuine collections of ints are an offer
    if isinstance(client_versions, (str, bytes, dict)):
        raise ValidationFailed(
            f"api_versions must be a list of ints, got {client_versions!r}"
        )
    try:
        offered = {int(v) for v in client_versions}
    except (TypeError, ValueError):
        raise ValidationFailed(
            f"api_versions must be a list of ints, got {client_versions!r}"
        ) from None
    supported = set(range(1, WIRE_VERSION + 1))
    common = offered & supported
    if not common:
        raise UnsupportedVersion(
            f"client speaks api versions {sorted(offered)}, server "
            f"supports {sorted(supported)}: no common version"
        )
    return max(common)


def parse_features(body: dict) -> tuple[str, ...]:
    """The ``features`` list of a handshake body, validated.

    Absent means none (every pre-feature peer), and *unknown* feature
    names pass through untouched — a feature set only ever grows by
    intersection (each side acts on the names it knows), which is what
    keeps old and new peers interoperable without version bumps.
    """
    features = body.get("features", [])
    if not isinstance(features, list) or not all(
        isinstance(f, str) for f in features
    ):
        raise ValidationFailed(
            f"handshake features must be a list of strings, got {features!r}"
        )
    return tuple(features)


def parse_hello(doc: dict) -> tuple[int, str, tuple[str, ...]]:
    """Validate a ``hello``; returns ``(api version, client, features)``."""
    body = _check_gateway_envelope(doc, "hello")
    if "api_versions" not in body:
        raise ValidationFailed("hello body is missing api_versions")
    return (
        negotiate_version(body["api_versions"]),
        str(body.get("client", "")),
        parse_features(body),
    )


def parse_welcome(doc: dict) -> tuple[int, str, int, tuple[str, ...]]:
    """Validate a ``welcome``; returns ``(api version, backend, session,
    features)``."""
    body = _check_gateway_envelope(doc, "welcome")
    try:
        version = int(body["api_version"])
        backend = str(body["backend"])
        session = int(body["session"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationFailed(
            f"malformed welcome body: {type(exc).__name__}: {exc}"
        ) from exc
    if version < 1 or version > WIRE_VERSION:
        raise UnsupportedVersion(
            f"server negotiated api version {version}, this client "
            f"supports 1..{WIRE_VERSION}"
        )
    return version, backend, session, parse_features(body)


# --------------------------------------------------------------------- #
# roles and shard-family advertisement                                   #
# --------------------------------------------------------------------- #
#
# Both ride the existing feature list, deliberately: features already
# intersect (each side acts on the names it knows, unknown names pass
# through), so a mesh worker saying hello to a plain gateway is simply a
# client with ignored features, and an old client saying hello to a mesh
# coordinator is a peer with no role — no version bump, no new frame.


def role_feature(role: str) -> str:
    """The feature name advertising a peer role (``"role:mesh-worker"``)."""
    return _ROLE_PREFIX + str(role)


def peer_role(features) -> str | None:
    """The role a hello's feature list claims, or ``None`` for a plain
    api client. More than one role is a contradiction, not a choice."""
    roles = [f[len(_ROLE_PREFIX):] for f in features if f.startswith(_ROLE_PREFIX)]
    if not roles:
        return None
    if len(roles) > 1:
        raise ValidationFailed(
            f"hello claims multiple peer roles: {sorted(roles)}"
        )
    return roles[0]


def family_features(families) -> tuple[str, ...]:
    """Feature names advertising hosted shard families
    (``"family:3"`` ...) — what a rejoining worker tells the coordinator
    it already holds."""
    return tuple(_FAMILY_PREFIX + str(int(f)) for f in families)


def advertised_families(features) -> tuple[int, ...]:
    """Shard family ids advertised in a feature list, sorted."""
    fams = set()
    for f in features:
        if not f.startswith(_FAMILY_PREFIX):
            continue
        tail = f[len(_FAMILY_PREFIX):]
        try:
            fams.add(int(tail))
        except ValueError:
            raise ValidationFailed(
                f"malformed family advertisement {f!r}"
            ) from None
    return tuple(sorted(fams))


# --------------------------------------------------------------------- #
# codec negotiation                                                      #
# --------------------------------------------------------------------- #
#
# Codecs ride the feature list like roles do: the client *offers* every
# codec it speaks (``codec:bin1``), the server grants back at most one,
# and no grant means json — so a pre-feature peer on either end of the
# socket degrades to the v1 JSON wire without noticing anything.

#: Codec names are lowercase tokens; anything else in a ``codec:``
#: feature is damage, not forward compatibility.
_CODEC_NAME = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


def codec_feature(name: str) -> str:
    """The feature name offering/granting a codec (``"codec:bin1"``)."""
    return _CODEC_PREFIX + str(name)


def offered_codecs(features) -> tuple[str, ...]:
    """Codec names carried by a feature list, offer order, deduplicated.

    Well-formed names the reader doesn't recognize pass through (the
    server just won't pick them); malformed ones — empty, spaces,
    uppercase — fail structured, because a peer that mangles the codec
    field cannot be trusted to frame the stream it is asking for.
    """
    names: list[str] = []
    for f in features:
        if not f.startswith(_CODEC_PREFIX):
            continue
        name = f[len(_CODEC_PREFIX):]
        if not _CODEC_NAME.match(name):
            raise ValidationFailed(f"malformed codec offer {f!r}")
        if name not in names:
            names.append(name)
    return tuple(names)


def negotiate_codec(offered, supported) -> str:
    """Server side: the codec this session will speak after the welcome.

    First offered codec the server supports wins (the client lists its
    preference order); no overlap — including an empty offer — means
    :data:`JSON_CODEC`, which every peer speaks by definition.
    """
    for name in offered:
        if name in supported:
            return str(name)
    return JSON_CODEC


def granted_codec(granted_features, offered) -> str:
    """Client side: the codec a welcome's feature grant puts us on.

    A server may only grant one codec, and only one we offered —
    anything else means it will frame the stream in bytes we cannot
    parse, which is version skew (``unsupported-version``), surfaced
    before the first post-handshake frame is touched.
    """
    names = offered_codecs(granted_features)
    if not names:
        return JSON_CODEC
    if len(names) > 1:
        raise ValidationFailed(
            f"welcome granted multiple codecs {sorted(names)}; a session "
            "has exactly one"
        )
    name = names[0]
    if name not in offered:
        raise UnsupportedVersion(
            f"server granted codec {name!r} this client did not offer"
        )
    return name
