"""The gateway wire protocol: framing and handshake, sans-IO.

Everything that crosses a gateway socket is a *frame*: a 4-byte
big-endian unsigned payload length followed by that many bytes of UTF-8
JSON encoding one ``dict`` document. Two document schemas travel inside
frames:

* ``repro.gateway`` v1 — connection lifecycle: the client's ``hello``
  (advertising the :mod:`repro.api` wire versions it speaks, plus any
  optional *features* it can handle — today ``"pipeline"``, the
  capability bit for out-of-order responses), the server's ``welcome``
  (the negotiated version, the accepted feature subset and a session
  id), and ``goodbye`` in either direction;
* ``repro.api`` v1 — every request/response after the handshake is the
  unmodified :func:`repro.api.to_wire` document; failures come back as
  the api ``error`` kind (:class:`~repro.api.messages.ErrorInfo`), so
  the error envelope *is* the existing structured error taxonomy.

This module is deliberately socket-free: :func:`encode_frame`,
:class:`FrameDecoder` and the handshake builders/parsers operate on
bytes and dicts only, which is what lets the fuzz suite drive them with
junk, truncated and oversized input without a running server. Every
malformed input maps to a stable :mod:`repro.api.errors` code —
``invalid-request`` for framing/structure damage, ``unsupported-version``
for version skew — never a bare ``KeyError``/``UnicodeDecodeError``.
"""

from __future__ import annotations

import json
import struct

from ..api.errors import UnsupportedVersion, ValidationFailed
from ..api.messages import WIRE_VERSION

__all__ = [
    "GATEWAY_SCHEMA",
    "GATEWAY_VERSION",
    "HEADER",
    "MAX_FRAME_BYTES",
    "PIPELINE_FEATURE",
    "TRACE_FEATURE",
    "MESH_WORKER_ROLE",
    "check_frame_length",
    "encode_frame",
    "decode_payload",
    "FrameDecoder",
    "hello_doc",
    "welcome_doc",
    "goodbye_doc",
    "is_gateway_doc",
    "parse_features",
    "parse_hello",
    "parse_welcome",
    "negotiate_version",
    "role_feature",
    "peer_role",
    "family_features",
    "advertised_families",
]

GATEWAY_SCHEMA = "repro.gateway"
GATEWAY_VERSION = 1

#: Session feature: the client accepts responses in completion order
#: (it matches them back by stream-envelope ``seq``), so the server may
#: read ahead and answer frames out of order. Off means the strict
#: request/response discipline of protocol v1 without features.
PIPELINE_FEATURE = "pipeline"

#: Session feature: request envelopes may carry a top-level ``trace``
#: dict (``{"trace_id", "span_id"}``, see :mod:`repro.obs.trace`) and
#: the server links its dispatch spans under it. Granted only when the
#: client offers it AND the server has tracing enabled; pre-feature
#: peers never see the key (api ``from_wire`` ignores unknown top-level
#: keys anyway), and malformed contexts degrade to untraced requests.
TRACE_FEATURE = "trace"

#: Peer role advertised by a mesh worker's hello: the connection is not
#: an api client asking for assignments but a shard host offering to
#: serve them (see :mod:`repro.mesh`). Roles ride the feature list, so
#: role-less peers and role-unaware servers interoperate untouched.
MESH_WORKER_ROLE = "mesh-worker"

_ROLE_PREFIX = "role:"
_FAMILY_PREFIX = "family:"

#: Frame header: one big-endian u32 payload length.
HEADER = struct.Struct(">I")

#: Hard frame ceiling. Reports for thousands of shards fit in well under
#: a megabyte; anything near this limit is a protocol error or an attack.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def check_frame_length(length: int, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Validate a decoded length prefix — the one copy of the rule.

    Every reader of the length header (the sans-IO decoder, the server's
    stream reader, the client transport) funnels through here, so the
    valid range cannot drift between them.
    """
    if length == 0 or length > max_frame_bytes:
        raise ValidationFailed(
            f"frame of {length} bytes outside the valid range "
            f"1..{max_frame_bytes}"
        )


def encode_frame(doc: dict, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one document to a length-prefixed JSON frame."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise ValidationFailed(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one frame payload; structured failure on any damage."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValidationFailed(
            f"frame payload is not valid JSON: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(doc, dict):
        raise ValidationFailed(
            f"frame payload must encode an object, got {type(doc).__name__}"
        )
    return doc


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    Feed it whatever the transport produced — half a header, three frames
    at once — and it yields complete documents as they close. Length
    damage (zero or oversized prefixes) and payload damage (junk bytes,
    invalid JSON) raise :class:`~repro.api.errors.ValidationFailed`; a
    raising decoder is poisoned and the connection it served cannot be
    resynchronized (the length prefix that framed the stream is the thing
    that lied).
    """

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes received but not yet closing a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return every frame it completed, in order."""
        self._buf += data
        frames: list[dict] = []
        while len(self._buf) >= HEADER.size:
            (length,) = HEADER.unpack_from(self._buf)
            check_frame_length(length, max_frame_bytes=self.max_frame_bytes)
            if len(self._buf) < HEADER.size + length:
                break
            payload = bytes(self._buf[HEADER.size : HEADER.size + length])
            del self._buf[: HEADER.size + length]
            frames.append(decode_payload(payload))
        return frames

    def check_eof(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call when the transport reports EOF: leftover buffered bytes mean
        the peer died (or was cut) mid-frame — a truncated frame, which
        must surface as a structured error, not silence.
        """
        if self._buf:
            raise ValidationFailed(
                f"connection ended mid-frame with {len(self._buf)} "
                "buffered bytes"
            )


# --------------------------------------------------------------------- #
# handshake documents                                                    #
# --------------------------------------------------------------------- #


def _gateway_doc(kind: str, body: dict) -> dict:
    return {
        "schema": GATEWAY_SCHEMA,
        "version": GATEWAY_VERSION,
        "kind": kind,
        "body": body,
    }


def hello_doc(
    api_versions=(WIRE_VERSION,),
    client: str = "repro.gateway.remote",
    features=(),
) -> dict:
    """The client's opening frame: api wire versions + optional features."""
    return _gateway_doc(
        "hello",
        {
            "api_versions": [int(v) for v in api_versions],
            "client": str(client),
            "features": [str(f) for f in features],
        },
    )


def welcome_doc(
    api_version: int, backend: str, session: int, features=()
) -> dict:
    """The server's handshake answer: negotiated version + accepted
    features + session id."""
    return _gateway_doc(
        "welcome",
        {
            "api_version": int(api_version),
            "backend": str(backend),
            "session": int(session),
            "features": [str(f) for f in features],
        },
    )


def goodbye_doc(reason: str = "") -> dict:
    """A polite close, sent by either side (server: on graceful drain)."""
    return _gateway_doc("goodbye", {"reason": str(reason)})


def is_gateway_doc(doc) -> bool:
    """Whether ``doc`` belongs to the gateway (vs api) schema."""
    return isinstance(doc, dict) and doc.get("schema") == GATEWAY_SCHEMA


#: The complete v1 gateway envelope. Top-level is frozen — the *body*
#: (and its feature list) is the extension point — so unknown top-level
#: keys are junk, not forward compatibility, and are rejected.
_ENVELOPE_KEYS = frozenset({"schema", "version", "kind", "body"})


def _check_gateway_envelope(doc: dict, kind: str) -> dict:
    if not isinstance(doc, dict):
        raise ValidationFailed(
            f"handshake document must be an object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema != GATEWAY_SCHEMA:
        raise UnsupportedVersion(
            f"foreign handshake schema {schema!r} "
            f"(this gateway speaks {GATEWAY_SCHEMA!r})"
        )
    version = doc.get("version")
    if not isinstance(version, int) or version < 1 or version > GATEWAY_VERSION:
        raise UnsupportedVersion(
            f"gateway protocol version {version!r} outside supported "
            f"range 1..{GATEWAY_VERSION}"
        )
    unknown = set(doc) - _ENVELOPE_KEYS
    if unknown:
        raise ValidationFailed(
            f"unknown handshake fields {sorted(map(repr, unknown))}; "
            "the v1 envelope is schema/version/kind/body"
        )
    if doc.get("kind") != kind:
        raise ValidationFailed(
            f"expected a {kind!r} handshake frame, got {doc.get('kind')!r}"
        )
    body = doc.get("body")
    if not isinstance(body, dict):
        raise ValidationFailed("handshake body must be an object")
    return body


def negotiate_version(client_versions) -> int:
    """Pick the highest api wire version both sides speak.

    The server side of schema-version negotiation: the client advertises
    everything it can parse, the server owns the decision. No overlap is
    an ``unsupported-version`` failure, answered before any api document
    is interpreted.
    """
    # strings are iterable and would "negotiate" from their digit
    # characters; only genuine collections of ints are an offer
    if isinstance(client_versions, (str, bytes, dict)):
        raise ValidationFailed(
            f"api_versions must be a list of ints, got {client_versions!r}"
        )
    try:
        offered = {int(v) for v in client_versions}
    except (TypeError, ValueError):
        raise ValidationFailed(
            f"api_versions must be a list of ints, got {client_versions!r}"
        ) from None
    supported = set(range(1, WIRE_VERSION + 1))
    common = offered & supported
    if not common:
        raise UnsupportedVersion(
            f"client speaks api versions {sorted(offered)}, server "
            f"supports {sorted(supported)}: no common version"
        )
    return max(common)


def parse_features(body: dict) -> tuple[str, ...]:
    """The ``features`` list of a handshake body, validated.

    Absent means none (every pre-feature peer), and *unknown* feature
    names pass through untouched — a feature set only ever grows by
    intersection (each side acts on the names it knows), which is what
    keeps old and new peers interoperable without version bumps.
    """
    features = body.get("features", [])
    if not isinstance(features, list) or not all(
        isinstance(f, str) for f in features
    ):
        raise ValidationFailed(
            f"handshake features must be a list of strings, got {features!r}"
        )
    return tuple(features)


def parse_hello(doc: dict) -> tuple[int, str, tuple[str, ...]]:
    """Validate a ``hello``; returns ``(api version, client, features)``."""
    body = _check_gateway_envelope(doc, "hello")
    if "api_versions" not in body:
        raise ValidationFailed("hello body is missing api_versions")
    return (
        negotiate_version(body["api_versions"]),
        str(body.get("client", "")),
        parse_features(body),
    )


def parse_welcome(doc: dict) -> tuple[int, str, int, tuple[str, ...]]:
    """Validate a ``welcome``; returns ``(api version, backend, session,
    features)``."""
    body = _check_gateway_envelope(doc, "welcome")
    try:
        version = int(body["api_version"])
        backend = str(body["backend"])
        session = int(body["session"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationFailed(
            f"malformed welcome body: {type(exc).__name__}: {exc}"
        ) from exc
    if version < 1 or version > WIRE_VERSION:
        raise UnsupportedVersion(
            f"server negotiated api version {version}, this client "
            f"supports 1..{WIRE_VERSION}"
        )
    return version, backend, session, parse_features(body)


# --------------------------------------------------------------------- #
# roles and shard-family advertisement                                   #
# --------------------------------------------------------------------- #
#
# Both ride the existing feature list, deliberately: features already
# intersect (each side acts on the names it knows, unknown names pass
# through), so a mesh worker saying hello to a plain gateway is simply a
# client with ignored features, and an old client saying hello to a mesh
# coordinator is a peer with no role — no version bump, no new frame.


def role_feature(role: str) -> str:
    """The feature name advertising a peer role (``"role:mesh-worker"``)."""
    return _ROLE_PREFIX + str(role)


def peer_role(features) -> str | None:
    """The role a hello's feature list claims, or ``None`` for a plain
    api client. More than one role is a contradiction, not a choice."""
    roles = [f[len(_ROLE_PREFIX):] for f in features if f.startswith(_ROLE_PREFIX)]
    if not roles:
        return None
    if len(roles) > 1:
        raise ValidationFailed(
            f"hello claims multiple peer roles: {sorted(roles)}"
        )
    return roles[0]


def family_features(families) -> tuple[str, ...]:
    """Feature names advertising hosted shard families
    (``"family:3"`` ...) — what a rejoining worker tells the coordinator
    it already holds."""
    return tuple(_FAMILY_PREFIX + str(int(f)) for f in families)


def advertised_families(features) -> tuple[int, ...]:
    """Shard family ids advertised in a feature list, sorted."""
    fams = set()
    for f in features:
        if not f.startswith(_FAMILY_PREFIX):
            continue
        tail = f[len(_FAMILY_PREFIX):]
        try:
            fams.add(int(tail))
        except ValueError:
            raise ValidationFailed(
                f"malformed family advertisement {f!r}"
            ) from None
    return tuple(sorted(fams))
