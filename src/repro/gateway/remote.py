"""The client-side transport: a gateway connection as a ``Backend``.

:class:`RemoteBackend` satisfies the :class:`~repro.api.backends.Backend`
contract over a TCP connection, so an unmodified
:class:`~repro.api.client.AssignmentClient` — sync calls, batches,
streaming windows, middleware and all — gains network access just by
being handed one. ``open()`` connects and handshakes (schema-version
negotiation included), ``handle()`` writes one frame and blocks for one
response frame, ``close()`` says goodbye.

The handshake also offers the ``pipeline`` feature: when the server
accepts it (:attr:`RemoteBackend.supports_pipeline` turns true), the
transport additionally exposes the split :meth:`RemoteBackend
.send_request` / :meth:`RemoteBackend.recv_response` pair, letting the
client keep several stream windows in flight and accept their responses
in whatever order the gateway finished them (the envelopes' ``seq``
restores stream order client-side). Against a pre-feature server the
attribute stays false and everything degrades to strict
request/response.

Error discipline: a structured error answered by the server (the api
``error`` kind) is re-raised locally as the matching
:class:`~repro.api.errors.ApiError` subclass — same codes, same
``retryable`` hints as in-process. Transport failures (refused, reset,
timed out, server draining) raise the retryable
:class:`~repro.api.errors.BackendUnavailable`.
"""

from __future__ import annotations

import socket

from ..api.backends import BackendBase, ServiceSpec
from ..api.errors import BackendUnavailable, ValidationFailed, error_from_info
from ..api.messages import (
    Batch,
    ErrorInfo,
    WIRE_VERSION,
    attach_trace,
    from_wire,
    to_wire,
)
from ..obs.trace import current_context
from .codec import decode_stream_result, encode_stream_batch
from .protocol import (
    BIN1_CODEC,
    BIN1_MAGIC,
    HEADER,
    JSON_CODEC,
    MAX_FRAME_BYTES,
    PIPELINE_FEATURE,
    STREAM_RESULT_TAG,
    TRACE_FEATURE,
    check_frame_length,
    codec_feature,
    decode_payload,
    encode_frame,
    goodbye_doc,
    granted_codec,
    hello_doc,
    is_gateway_doc,
    parse_welcome,
    payload_frame,
)

__all__ = ["RemoteBackend"]


class RemoteBackend(BackendBase):
    """A remote gateway behind the in-process backend contract.

    Parameters
    ----------
    spec:
        The :class:`~repro.api.backends.ServiceSpec` the *server* was
        configured with, or ``None``. The spec never crosses the wire —
        the server owns its backend — but carrying it keeps remote and
        in-process backends interchangeable in code that reads
        ``backend.spec``.
    address:
        The gateway's ``(host, port)``.
    connect_timeout / call_timeout:
        Socket deadlines for connecting and for each request round trip.
        A cluster-served flush barrier can legitimately take a while, so
        the call deadline is generous by default.
    pipeline:
        Whether to *offer* the ``pipeline`` feature in the handshake.
        The negotiated outcome lands in :attr:`supports_pipeline`; the
        offer itself is harmless against any server (pre-feature servers
        ignore unknown body fields).
    trace:
        Whether to *offer* the ``trace`` feature (on by default — the
        offer is free, and only a tracing-enabled server grants it).
        When granted, request frames carry the sender's current trace
        context so the server links its spans under the caller's.
    binary:
        Whether to *offer* the ``codec:bin1`` feature (on by default).
        A granting server puts the whole session on struct-packed
        binary frames; pre-feature servers ignore the offer and the
        session stays JSON. The outcome lands in :attr:`codec`, fixed
        at welcome for the life of the connection.
    """

    name = "remote"

    def __init__(
        self,
        spec: ServiceSpec | None = None,
        *,
        address: tuple[str, int],
        connect_timeout: float = 10.0,
        call_timeout: float = 300.0,
        client_name: str = "repro.gateway.remote",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        pipeline: bool = True,
        trace: bool = True,
        binary: bool = True,
    ) -> None:
        super().__init__(spec)
        self.address = (str(address[0]), int(address[1]))
        self.connect_timeout = float(connect_timeout)
        self.call_timeout = float(call_timeout)
        self.client_name = str(client_name)
        self.max_frame_bytes = int(max_frame_bytes)
        self.pipeline = bool(pipeline)
        self.trace = bool(trace)
        self.binary = bool(binary)
        self.api_version: int | None = None
        self.session: int | None = None
        self.server_backend: str | None = None
        self.server_features: tuple[str, ...] = ()
        self.codec: str = JSON_CODEC
        self.bytes_sent = 0
        self.bytes_received = 0
        self._sock: socket.socket | None = None
        self._outstanding = 0

    @property
    def supports_pipeline(self) -> bool:
        """Whether this session negotiated out-of-order responses."""
        return PIPELINE_FEATURE in self.server_features

    @property
    def supports_trace(self) -> bool:
        """Whether this session negotiated trace-context propagation."""
        return TRACE_FEATURE in self.server_features

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def _open(self) -> None:
        self.codec = JSON_CODEC  # handshake always starts in json
        try:
            self._sock = socket.create_connection(
                self.address, timeout=self.connect_timeout
            )
            # request/response framing stalls badly under Nagle: the last
            # partial segment of every frame waits on the peer's delayed
            # ACK (~40ms) unless small writes go out immediately
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock.settimeout(self.call_timeout)
            self._send_doc(
                hello_doc(
                    api_versions=range(1, WIRE_VERSION + 1),
                    client=self.client_name,
                    features=tuple(
                        feature
                        for feature, on in (
                            (PIPELINE_FEATURE, self.pipeline),
                            (TRACE_FEATURE, self.trace),
                            (codec_feature(BIN1_CODEC), self.binary),
                        )
                        if on
                    ),
                )
            )
            doc = self._recv_doc()
            if not is_gateway_doc(doc):
                # the server refused the handshake with a structured error
                response = from_wire(doc)
                if isinstance(response, ErrorInfo):
                    raise error_from_info(response)
                raise BackendUnavailable(
                    f"gateway answered the handshake with {doc.get('kind')!r}"
                )
            (
                self.api_version,
                self.server_backend,
                self.session,
                self.server_features,
            ) = parse_welcome(doc)
            # the codec switches AT the welcome: the hello/welcome pair
            # above travelled json, everything from here on is framed in
            # the granted codec (a grant we never offered is skew and
            # raises before any frame is misread)
            self.codec = granted_codec(
                self.server_features,
                (BIN1_CODEC,) if self.binary else (),
            )
        except OSError as exc:
            self._drop()
            raise BackendUnavailable(
                f"cannot reach gateway at {self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        except Exception:
            # a malformed/version-skewed welcome must not leak the socket
            self._drop()
            raise

    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._send_doc(goodbye_doc("client closing"))
            except OSError:
                pass
            self._drop()

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        # a dead socket owes nothing: without this reset, a sync call
        # after a lost pipelined stream would fail the in-flight guard
        # (caller-bug ValidationFailed) instead of the documented
        # retryable BackendUnavailable
        self._outstanding = 0

    # ------------------------------------------------------------------ #
    # dispatch                                                            #
    # ------------------------------------------------------------------ #

    def handle(self, request):
        """One request frame out, one response frame back.

        Overrides the verb-method dispatch of :class:`BackendBase`
        wholesale: every request — batches and stream envelopes included
        — is a single ``to_wire`` document on the socket, and the
        server's backend applies its own transport-level batching (a
        cluster-served batch still gets chunked dispatch).

        Once the connection has been lost (reset, drain, frame damage)
        every further call fails with the same retryable
        :class:`BackendUnavailable` — the session's server-side state is
        gone, so "retry" means a fresh ``RemoteBackend``, never a silent
        reconnect that would hide the discontinuity.

        While a pipelined stream still has windows in flight the
        connection's next frames belong to *those* windows, so a sync
        call would steal one as its own answer; it is refused
        structurally instead (finish or drain the stream first).
        """
        if self._outstanding > 0:
            raise ValidationFailed(
                f"sync call with {self._outstanding} pipelined responses "
                "still in flight; drain the stream before mixing in "
                "request/response calls"
            )
        self.send_request(request)
        return self.recv_response()

    def send_request(self, request) -> None:
        """Put one request frame on the wire without waiting for it.

        Half of the pipelined transport: callers that keep several
        requests in flight owe the socket exactly one
        :meth:`recv_response` per successful send, in any order they
        like. :meth:`handle` is simply a send immediately followed by
        its receive.
        """
        self._ensure_open()
        if self._sock is None:
            raise BackendUnavailable(
                "gateway connection was lost; open a new RemoteBackend"
            )
        payload = None
        if (
            self.codec == BIN1_CODEC
            and type(request) is Batch
            and not self.supports_trace
        ):
            # columnar fast path: a stream window of register/submit
            # events packs straight into fixed-width rows, skipping the
            # document layer on both ends. None means some item fell
            # outside the row shape — take the document path below.
            # A traced session stays on documents: rows have nowhere to
            # carry the trace context.
            payload = encode_stream_batch(request)
        try:
            if payload is not None:
                frame = payload_frame(
                    payload, max_frame_bytes=self.max_frame_bytes
                )
                self.bytes_sent += len(frame)
                self._sock.sendall(frame)
            else:
                doc = to_wire(request)
                if self.supports_trace:
                    # the thread's current span (the client middleware
                    # opens one around each call) crosses the socket as a
                    # plain dict; an untraced thread sends nothing
                    ctx = current_context()
                    if ctx is not None:
                        attach_trace(doc, ctx.to_dict())
                self._send_doc(doc)
        except OSError as exc:
            self._drop()
            raise BackendUnavailable(
                f"gateway connection lost mid-send: {exc}"
            ) from exc
        self._outstanding += 1

    def recv_response(self):
        """Take the next response frame off the wire.

        Responses arrive in the server's completion order when the
        session is pipelined (match them by envelope ``seq``); a
        structured error frame re-raises as its
        :class:`~repro.api.errors.ApiError` class and *consumes* the
        response slot — the session itself survives request errors.
        Calling with no request in flight is a caller bug and fails
        structurally instead of blocking on a frame that will never come.
        """
        if self._sock is None:
            raise BackendUnavailable(
                "gateway connection was lost; open a new RemoteBackend"
            )
        if self._outstanding <= 0:
            raise ValidationFailed(
                "recv_response with no request in flight; every receive "
                "must be owed by a prior send_request"
            )
        try:
            payload = self._recv_payload()
        except OSError as exc:
            self._drop()
            raise BackendUnavailable(
                f"gateway connection lost mid-call: {exc}"
            ) from exc
        if (
            self.codec == BIN1_CODEC
            and len(payload) >= 3
            and payload[0] == BIN1_MAGIC
            and payload[2] == STREAM_RESULT_TAG
        ):
            # mirror of the send-side fast path: the whole window of
            # answers comes back as rows and never touches from_wire
            result = decode_stream_result(payload)
            self._outstanding -= 1
            return result
        doc = decode_payload(payload, codec=self.codec)
        self._outstanding -= 1
        if is_gateway_doc(doc):
            self._drop()
            reason = ""
            if isinstance(doc.get("body"), dict):
                reason = str(doc["body"].get("reason", ""))
            raise BackendUnavailable(
                f"gateway closed the session ({reason or 'no reason given'})"
            )
        response = from_wire(doc)
        if isinstance(response, ErrorInfo):
            raise error_from_info(response)
        return response

    # ------------------------------------------------------------------ #
    # frame IO                                                            #
    # ------------------------------------------------------------------ #

    def _send_doc(self, doc: dict) -> None:
        frame = encode_frame(
            doc, max_frame_bytes=self.max_frame_bytes, codec=self.codec
        )
        self.bytes_sent += len(frame)
        self._sock.sendall(frame)

    def _recv_doc(self) -> dict:
        return decode_payload(self._recv_payload(), codec=self.codec)

    def _recv_payload(self) -> bytes:
        header = self._recv_exact(HEADER.size)
        (length,) = HEADER.unpack(header)
        try:
            check_frame_length(length, max_frame_bytes=self.max_frame_bytes)
        except ValidationFailed as exc:
            # a server that misframes is unusable, not merely wrong
            self._drop()
            raise BackendUnavailable(
                f"gateway sent an invalid frame: {exc}"
            ) from exc
        self.bytes_received += HEADER.size + length
        return self._recv_exact(length)

    def _recv_exact(self, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = self._sock.recv(n - len(chunks))
            if not chunk:
                raise ConnectionError(
                    f"gateway closed the connection mid-frame "
                    f"({len(chunks)}/{n} bytes)"
                )
            chunks += chunk
        return bytes(chunks)
