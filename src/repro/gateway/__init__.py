"""repro.gateway — the assignment service over a TCP socket.

The network layer the API package was built for: :mod:`repro.api`'s
schema-versioned wire form (``to_wire``/``from_wire``) framed as
length-prefixed JSON over asyncio TCP, with any backend — in-process,
sharded engine, or multiprocess cluster — behind it. Nothing backend
changes; the conformance suite proves a remote client gets bit-identical
assignments to an in-process one.

* **protocol** — sans-IO framing (4-byte big-endian length + UTF-8 JSON,
  8 MiB ceiling), the ``hello``/``welcome``/``goodbye`` handshake with
  api-version negotiation and feature bits (``"pipeline"`` = the client
  accepts out-of-order responses), and stable error codes for every
  kind of damage (junk, truncation, oversize, version skew);
* **server** — :class:`GatewayServer`: per-connection sessions behind a
  handshake, backend calls scheduled on the shard-aware
  :class:`~repro.runtime.PipelineScheduler` (different shards run
  concurrently, same-shard requests stay FIFO, ``Flush``/``GetReport``
  are global barriers — bit-identical to serial dispatch by
  construction), out-of-order answers for sessions that negotiated
  ``pipeline``, bounded in-flight work with TCP backpressure, optional
  token-bucket admission, structured errors over the wire, graceful
  drain that flushes pipelined windows before goodbye; plus
  :func:`serve_gateway` to run one on a daemon thread from sync code;
* **remote** — :class:`RemoteBackend`: the gateway connection as a
  regular :class:`~repro.api.backends.Backend`, so an unmodified
  :class:`~repro.api.client.AssignmentClient` talks to a remote service
  — including pipelined stream windows (``client.stream(...,
  pipeline=N)``) over sessions that negotiated the feature.

Quick start::

    from repro.api import AssignmentClient, ServiceSpec
    from repro.gateway import GatewayConfig, RemoteBackend, serve_gateway
    from repro.geometry import Box

    spec = ServiceSpec(region=Box.square(200.0), shards=(2, 2), seed=0)
    with serve_gateway(GatewayConfig(spec=spec, backend="sharded")) as gw:
        with AssignmentClient(RemoteBackend(spec, address=gw.address)) as c:
            c.register_worker(0, (10.0, 20.0))
            worker = c.submit_task(0, (12.0, 21.0))

CLI::

    python -m repro.gateway --smoke             # remote-parity gate (CI)
    python -m repro.gateway --serve --port 7713 # real server, Ctrl-C to stop
"""

from .protocol import (
    GATEWAY_SCHEMA,
    GATEWAY_VERSION,
    MAX_FRAME_BYTES,
    MESH_WORKER_ROLE,
    PIPELINE_FEATURE,
    FrameDecoder,
    advertised_families,
    encode_frame,
    decode_payload,
    family_features,
    goodbye_doc,
    hello_doc,
    negotiate_version,
    parse_features,
    parse_hello,
    parse_welcome,
    peer_role,
    role_feature,
    welcome_doc,
)
from .remote import RemoteBackend
from .server import GatewayConfig, GatewayServer, Session, serve_gateway

__all__ = [
    "GATEWAY_SCHEMA",
    "GATEWAY_VERSION",
    "MAX_FRAME_BYTES",
    "MESH_WORKER_ROLE",
    "PIPELINE_FEATURE",
    "FrameDecoder",
    "GatewayConfig",
    "GatewayServer",
    "RemoteBackend",
    "Session",
    "advertised_families",
    "decode_payload",
    "encode_frame",
    "family_features",
    "goodbye_doc",
    "hello_doc",
    "negotiate_version",
    "parse_features",
    "parse_hello",
    "parse_welcome",
    "peer_role",
    "role_feature",
    "serve_gateway",
    "welcome_doc",
]
