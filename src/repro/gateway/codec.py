"""The ``bin1`` binary payload codec: struct-packed api frames.

JSON text is the gateway's v1 baseline, and it taxes every frame twice:
``json.dumps`` walks the document on the way out, ``json.loads``
re-tokenizes it on the way in, and numbers travel as decimal text. bin1
replaces the *payload encoding only* — framing (u32-BE length prefix),
the handshake, the document shapes and the error taxonomy are all
unchanged — with a tagged binary layout:

```
payload := magic u8 (0xB1) | layout-version u8 (0x01) | tag u8 | body
```

Per-kind *fast tags* struct-pack the hot api messages (register/submit
are one ``>qddd`` each; a batch is a count plus length-prefixed
recursively-encoded items). Everything that doesn't match a fast tag's
exact shape — reports, traced envelopes, mesh ops, foreign versions,
big ints, int-typed floats — is carried by :data:`GENERIC_TAG` as
embedded JSON of the whole document. That fallback is what makes the
encoder *total* (any dict that json can carry, bin1 can carry) and what
guarantees decode fidelity: a fast tag is only used when re-expanding
it reproduces the document a JSON peer would have produced, value types
included, so the negotiated codec can never change what a backend sees.

Decoding is zero-copy: the caller may hand in the ``memoryview`` slice
straight out of the receive buffer; fields are unpacked in place and
strings decoded directly from the view. Every malformed input — bad
magic, foreign layout version, junk tag, truncation at any boundary,
lying inner lengths, trailing garbage — raises a structured
:mod:`repro.api.errors` code, never a bare ``struct.error``; the fuzz
suite drives this promise the same way it drives the JSON path.

Tag numbers and codec names are owned by :mod:`repro.gateway.protocol`
(lint rule RL403); this module holds only the encode/decode machinery.
"""

from __future__ import annotations

import json
import struct

from ..api.errors import UnsupportedVersion, ValidationFailed
from ..api.messages import (
    WIRE_SCHEMA,
    WIRE_VERSION,
    Batch,
    BatchResult,
    RegisterWorker,
    StreamEnvelope,
    StreamItemResult,
    SubmitTask,
    TaskDecision,
    WorkerRegistered,
)
from .protocol import (
    BATCH_RESULT_TAG,
    BATCH_TAG,
    BIN1_MAGIC,
    BIN1_WIRE_VERSION,
    ENVELOPE_RESULT_TAG,
    ENVELOPE_TAG,
    ERROR_TAG,
    FLUSH_TAG,
    FLUSHED_TAG,
    GENERIC_TAG,
    GET_REPORT_TAG,
    PACKED_DOC_TAG,
    REGISTER_WORKER_TAG,
    STREAM_BATCH_TAG,
    STREAM_RESULT_TAG,
    SUBMIT_TASK_TAG,
    TASK_DECISION_TAG,
    WORKER_REGISTERED_TAG,
)

__all__ = [
    "encode_bin1",
    "decode_bin1",
    "encode_packed",
    "encode_stream_batch",
    "decode_stream_batch",
    "encode_stream_result",
    "decode_stream_result",
]

_PREFIX = struct.Struct(">BBB")  # magic, layout version, tag
_EVENT = struct.Struct(">qddd")  # id, x, y, time
_F64 = struct.Struct(">d")
_I64 = struct.Struct(">q")
_DECISION = struct.Struct(">qBq")  # task_id, has-worker flag, worker_id
_U32 = struct.Struct(">I")
_SEQ = struct.Struct(">q")

# columnar stream rows (see STREAM_BATCH_TAG / STREAM_RESULT_TAG):
# fixed width, no per-item nesting — the whole window is one pack loop
_STREAM_ROW = struct.Struct(">Bqqddd")  # kind, seq, id, x, y, time
_RESULT_ROW = struct.Struct(">Bqqq")  # kind, seq, id, worker (or 0)

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

#: Deepest legal tag nesting: batch > envelope > verb is depth 3; junk
#: that nests deeper than 8 is an attack on the decoder's stack.
_MAX_DEPTH = 8


def _is_i64(v) -> bool:
    # bool is an int subclass but json spells it true/false, not 0/1
    return type(v) is int and _I64_MIN <= v <= _I64_MAX


def _is_f64(v) -> bool:
    return type(v) is float


def _is_point(v) -> bool:
    return (
        type(v) is list
        and len(v) == 2
        and type(v[0]) is float
        and type(v[1]) is float
    )


# --------------------------------------------------------------------- #
# encode                                                                 #
# --------------------------------------------------------------------- #


def _encode_nested(item, out: bytearray, depth: int) -> bool:
    """Append ``u32 length | bin1 payload`` of one nested document."""
    if not isinstance(item, dict):
        return False
    mark = len(out)
    out += b"\x00\x00\x00\x00"
    _encode_into(item, out, depth)
    _U32.pack_into(out, mark, len(out) - mark - _U32.size)
    return True


def _try_fast(doc: dict, out: bytearray, depth: int) -> bool:
    """Append the fast-tag encoding of ``doc``; False -> caller falls
    back to GENERIC. Appends nothing unless the whole doc matches."""
    if depth > _MAX_DEPTH:
        return False
    if len(doc) != 4 or doc.get("schema") != WIRE_SCHEMA:
        return False
    if doc.get("version") != WIRE_VERSION:
        return False
    kind = doc.get("kind")
    body = doc.get("body")
    if type(body) is not dict:
        return False
    mark = len(out)
    if kind in ("register_worker", "submit_task"):
        key = "worker_id" if kind == "register_worker" else "task_id"
        if len(body) != 3:
            return False
        ident, loc, when = body.get(key), body.get("location"), body.get("time")
        if not (_is_i64(ident) and _is_point(loc) and _is_f64(when)):
            return False
        tag = REGISTER_WORKER_TAG if kind == "register_worker" else SUBMIT_TASK_TAG
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, tag)
        out += _EVENT.pack(ident, loc[0], loc[1], when)
        return True
    if kind == "flush" or kind == "flushed":
        if body:
            return False
        tag = FLUSH_TAG if kind == "flush" else FLUSHED_TAG
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, tag)
        return True
    if kind == "get_report":
        if len(body) != 1 or not _is_f64(body.get("wall_seconds")):
            return False
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, GET_REPORT_TAG)
        out += _F64.pack(body["wall_seconds"])
        return True
    if kind == "worker_registered":
        if len(body) != 1 or not _is_i64(body.get("worker_id")):
            return False
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, WORKER_REGISTERED_TAG)
        out += _I64.pack(body["worker_id"])
        return True
    if kind == "task_decision":
        if len(body) != 2 or not _is_i64(body.get("task_id")):
            return False
        worker = body.get("worker_id")
        if worker is not None and not _is_i64(worker):
            return False
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, TASK_DECISION_TAG)
        out += _DECISION.pack(
            body["task_id"], 0 if worker is None else 1, worker or 0
        )
        return True
    if kind in ("envelope", "envelope_result"):
        if len(body) != 2 or not _is_i64(body.get("seq")):
            return False
        tag = ENVELOPE_TAG if kind == "envelope" else ENVELOPE_RESULT_TAG
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, tag)
        out += _SEQ.pack(body["seq"])
        if not _encode_nested(body.get("item"), out, depth + 1):
            del out[mark:]
            return False
        return True
    if kind in ("batch", "batch_result"):
        items = body.get("items")
        if len(body) != 1 or type(items) is not list:
            return False
        tag = BATCH_TAG if kind == "batch" else BATCH_RESULT_TAG
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, tag)
        out += _U32.pack(len(items))
        for item in items:
            if not _encode_nested(item, out, depth + 1):
                del out[mark:]
                return False
        return True
    if kind == "error":
        if len(body) != 4 or type(body.get("retryable")) is not bool:
            return False
        code, message, detail = (
            body.get("code"),
            body.get("message"),
            body.get("detail"),
        )
        if not all(type(s) is str for s in (code, message, detail)):
            return False
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, ERROR_TAG)
        for s in (code, message, detail):
            raw = s.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
        out += b"\x01" if body["retryable"] else b"\x00"
        return True
    return False


def _encode_into(doc: dict, out: bytearray, depth: int) -> None:
    if not _try_fast(doc, out, depth):
        out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, GENERIC_TAG)
        out += json.dumps(doc, separators=(",", ":")).encode("utf-8")


def encode_bin1(doc: dict) -> bytes:
    """One document -> one bin1 frame payload (no length prefix)."""
    if not isinstance(doc, dict):
        raise ValidationFailed(
            f"frame document must be an object, got {type(doc).__name__}"
        )
    out = bytearray()
    _encode_into(doc, out, 1)
    return bytes(out)


# --------------------------------------------------------------------- #
# decode                                                                 #
# --------------------------------------------------------------------- #


class _Reader:
    """Bounds-checked cursor over one payload view; all failures are
    structured ``invalid-request`` errors, never ``struct.error``."""

    __slots__ = ("view", "pos", "end")

    def __init__(self, view, pos: int, end: int) -> None:
        self.view = view
        self.pos = pos
        self.end = end

    def need(self, n: int) -> int:
        start = self.pos
        if self.end - start < n:
            raise ValidationFailed(
                f"bin1 payload truncated: needed {n} bytes at offset "
                f"{start}, {self.end - start} remain"
            )
        self.pos = start + n
        return start

    def unpack(self, st: struct.Struct):
        return st.unpack_from(self.view, self.need(st.size))

    def take_str(self) -> str:
        (n,) = self.unpack(_U32)
        start = self.need(n)
        try:
            return str(self.view[start : start + n], "utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationFailed(
                f"bin1 string field is not valid UTF-8: {exc}"
            ) from exc

    def done(self) -> None:
        if self.pos != self.end:
            raise ValidationFailed(
                f"bin1 payload has {self.end - self.pos} trailing bytes "
                f"after its body"
            )


def _doc(kind: str, body: dict) -> dict:
    return {
        "schema": WIRE_SCHEMA,
        "version": WIRE_VERSION,
        "kind": kind,
        "body": body,
    }


def _decode_nested(r: _Reader, depth: int) -> dict:
    (n,) = r.unpack(_U32)
    start = r.need(n)
    inner = _Reader(r.view, start, start + n)
    doc = _decode_at(inner, depth)
    inner.done()
    return doc


def _decode_at(r: _Reader, depth: int) -> dict:
    if depth > _MAX_DEPTH:
        raise ValidationFailed(
            f"bin1 payload nests deeper than {_MAX_DEPTH} levels"
        )
    magic, version, tag = r.unpack(_PREFIX)
    if magic != BIN1_MAGIC:
        raise ValidationFailed(
            f"bin1 payload starts with byte {magic:#04x}, "
            f"expected {BIN1_MAGIC:#04x}"
        )
    if version != BIN1_WIRE_VERSION:
        raise UnsupportedVersion(
            f"bin1 layout version {version}, this peer speaks "
            f"{BIN1_WIRE_VERSION}"
        )
    if tag == GENERIC_TAG:
        start = r.pos
        r.pos = r.end
        try:
            doc = json.loads(str(r.view[start : r.end], "utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValidationFailed(
                f"bin1 generic body is not valid JSON: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ValidationFailed(
                f"bin1 generic body must encode an object, "
                f"got {type(doc).__name__}"
            )
        return doc
    if tag in (REGISTER_WORKER_TAG, SUBMIT_TASK_TAG):
        ident, x, y, when = r.unpack(_EVENT)
        kind = "register_worker" if tag == REGISTER_WORKER_TAG else "submit_task"
        key = "worker_id" if tag == REGISTER_WORKER_TAG else "task_id"
        return _doc(kind, {key: ident, "location": [x, y], "time": when})
    if tag == FLUSH_TAG:
        return _doc("flush", {})
    if tag == FLUSHED_TAG:
        return _doc("flushed", {})
    if tag == GET_REPORT_TAG:
        (wall,) = r.unpack(_F64)
        return _doc("get_report", {"wall_seconds": wall})
    if tag == WORKER_REGISTERED_TAG:
        (ident,) = r.unpack(_I64)
        return _doc("worker_registered", {"worker_id": ident})
    if tag == TASK_DECISION_TAG:
        task, has_worker, worker = r.unpack(_DECISION)
        if has_worker not in (0, 1):
            raise ValidationFailed(
                f"bin1 task_decision has-worker flag must be 0 or 1, "
                f"got {has_worker}"
            )
        return _doc(
            "task_decision",
            {"task_id": task, "worker_id": worker if has_worker else None},
        )
    if tag in (ENVELOPE_TAG, ENVELOPE_RESULT_TAG):
        (seq,) = r.unpack(_SEQ)
        item = _decode_nested(r, depth + 1)
        kind = "envelope" if tag == ENVELOPE_TAG else "envelope_result"
        return _doc(kind, {"seq": seq, "item": item})
    if tag == STREAM_BATCH_TAG:
        (count,) = r.unpack(_U32)
        start = r.need(count * _STREAM_ROW.size)
        items = []
        for k, seq, ident, x, y, when in _STREAM_ROW.iter_unpack(
            r.view[start : r.pos]
        ):
            if k == 0:
                item = _doc(
                    "register_worker",
                    {"worker_id": ident, "location": [x, y], "time": when},
                )
            elif k == 1:
                item = _doc(
                    "submit_task",
                    {"task_id": ident, "location": [x, y], "time": when},
                )
            else:
                raise ValidationFailed(
                    f"bin1 stream row kind must be 0 or 1, got {k}"
                )
            items.append(_doc("envelope", {"seq": seq, "item": item}))
        return _doc("batch", {"items": items})
    if tag == STREAM_RESULT_TAG:
        (count,) = r.unpack(_U32)
        start = r.need(count * _RESULT_ROW.size)
        items = []
        for k, seq, ident, worker in _RESULT_ROW.iter_unpack(
            r.view[start : r.pos]
        ):
            if k == 0:
                item = _doc("worker_registered", {"worker_id": ident})
            elif k == 1:
                item = _doc(
                    "task_decision", {"task_id": ident, "worker_id": worker}
                )
            elif k == 2:
                item = _doc(
                    "task_decision", {"task_id": ident, "worker_id": None}
                )
            else:
                raise ValidationFailed(
                    f"bin1 result row kind must be 0, 1 or 2, got {k}"
                )
            if k != 1 and worker != 0:
                # one canonical byte string per document: the unused
                # worker slot must be zero, anything else is damage
                raise ValidationFailed(
                    f"bin1 result row kind {k} carries a nonzero worker "
                    f"field {worker}"
                )
            items.append(_doc("envelope_result", {"seq": seq, "item": item}))
        return _doc("batch_result", {"items": items})
    if tag in (BATCH_TAG, BATCH_RESULT_TAG):
        (count,) = r.unpack(_U32)
        if count > (r.end - r.pos):
            # every item costs >= 1 byte; a count beyond the remaining
            # bytes is a lying header, caught before any allocation
            raise ValidationFailed(
                f"bin1 batch count {count} exceeds the {r.end - r.pos} "
                f"payload bytes that remain"
            )
        items = [_decode_nested(r, depth + 1) for _ in range(count)]
        kind = "batch" if tag == BATCH_TAG else "batch_result"
        return _doc(kind, {"items": items})
    if tag == PACKED_DOC_TAG:
        doc = _unpack_value(r, 1)
        if not isinstance(doc, dict):
            raise ValidationFailed(
                f"bin1 packed body must encode an object, "
                f"got {type(doc).__name__}"
            )
        return doc
    if tag == ERROR_TAG:
        code = r.take_str()
        message = r.take_str()
        detail = r.take_str()
        start = r.need(1)
        flag = r.view[start]
        if flag not in (0, 1):
            raise ValidationFailed(
                f"bin1 error retryable flag must be 0 or 1, got {flag}"
            )
        return _doc(
            "error",
            {
                "code": code,
                "message": message,
                "retryable": bool(flag),
                "detail": detail,
            },
        )
    raise ValidationFailed(f"unknown bin1 frame tag {tag:#04x}")


def decode_bin1(payload) -> dict:
    """One bin1 payload (bytes or memoryview) -> the document."""
    view = memoryview(payload) if not isinstance(payload, memoryview) else payload
    r = _Reader(view, 0, len(view))
    doc = _decode_at(r, 1)
    r.done()
    return doc


# --------------------------------------------------------------------- #
# columnar stream fast path                                              #
# --------------------------------------------------------------------- #
#
# The doc-shaped codec above costs ~35us per streamed event once both
# directions of to_wire/encode/decode/from_wire are summed; the stream
# fast path packs a whole replay window of api dataclasses straight into
# fixed-width rows (and back) without ever building the documents. Only
# these object-level encoders *produce* STREAM_BATCH / STREAM_RESULT
# payloads; `_decode_at` above accepts them too, so any bin1 decoder —
# including a mixed-codec mesh peer sniffing frames — stays total.


def _stream_reader(payload, expect_tag: int) -> _Reader:
    """Validate the bin1 prefix of a stream payload, cursor after it."""
    view = memoryview(payload) if not isinstance(payload, memoryview) else payload
    r = _Reader(view, 0, len(view))
    magic, version, tag = r.unpack(_PREFIX)
    if magic != BIN1_MAGIC:
        raise ValidationFailed(
            f"bin1 payload starts with byte {magic:#04x}, "
            f"expected {BIN1_MAGIC:#04x}"
        )
    if version != BIN1_WIRE_VERSION:
        raise UnsupportedVersion(
            f"bin1 layout version {version}, this peer speaks "
            f"{BIN1_WIRE_VERSION}"
        )
    if tag != expect_tag:
        raise ValidationFailed(
            f"expected bin1 stream tag {expect_tag:#04x}, got {tag:#04x}"
        )
    return r


def encode_stream_batch(batch) -> bytes | None:
    """A :class:`Batch` of enveloped register/submit events -> one
    STREAM_BATCH payload, or ``None`` when anything falls outside the
    fixed-width row shape (the caller takes the document path).

    Fidelity rule: a row carries exactly what ``to_wire`` would have
    serialized — struct ``q`` rejects non-integers (-> ``None`` ->
    fallback) and ``d`` widens ints the way ``float()`` does, and the
    decoders below apply the same coercions ``_from_body`` would — so
    the far side sees identical dataclasses on either path.
    """
    if type(batch) is not Batch:
        return None
    pack = _STREAM_ROW.pack
    try:
        parts = [
            _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, STREAM_BATCH_TAG),
            _U32.pack(len(batch.items)),
        ]
        for env in batch.items:
            if type(env) is not StreamEnvelope:
                return None
            item = env.item
            kind = type(item)
            if kind is RegisterWorker:
                row_kind, ident = 0, item.worker_id
            elif kind is SubmitTask:
                row_kind, ident = 1, item.task_id
            else:
                return None
            x, y = item.location
            parts.append(pack(row_kind, env.seq, ident, x, y, item.time))
    except (struct.error, TypeError, ValueError):
        return None
    return b"".join(parts)


def decode_stream_batch(payload) -> Batch:
    """One STREAM_BATCH payload -> the :class:`Batch`, no document layer.

    Malformed bytes raise the same structured errors as
    :func:`decode_bin1`: truncation, bad kinds and trailing garbage are
    all ``invalid-request``, a foreign layout version is
    ``unsupported-version``.
    """
    r = _stream_reader(payload, STREAM_BATCH_TAG)
    (count,) = r.unpack(_U32)
    start = r.need(count * _STREAM_ROW.size)
    items = []
    append = items.append
    for k, seq, ident, x, y, when in _STREAM_ROW.iter_unpack(
        r.view[start : r.pos]
    ):
        if k == 0:
            item = RegisterWorker(ident, (x, y), when)
        elif k == 1:
            item = SubmitTask(ident, (x, y), when)
        else:
            raise ValidationFailed(
                f"bin1 stream row kind must be 0 or 1, got {k}"
            )
        append(StreamEnvelope(seq, item))
    r.done()
    return Batch(items)


def encode_stream_result(result) -> bytes | None:
    """A :class:`BatchResult` of enveloped register/submit answers ->
    one STREAM_RESULT payload, or ``None`` for the document path."""
    if type(result) is not BatchResult:
        return None
    pack = _RESULT_ROW.pack
    try:
        parts = [
            _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, STREAM_RESULT_TAG),
            _U32.pack(len(result.items)),
        ]
        for env in result.items:
            if type(env) is not StreamItemResult:
                return None
            item = env.item
            kind = type(item)
            if kind is WorkerRegistered:
                parts.append(pack(0, env.seq, item.worker_id, 0))
            elif kind is TaskDecision:
                worker = item.worker_id
                if worker is None:
                    parts.append(pack(2, env.seq, item.task_id, 0))
                else:
                    parts.append(pack(1, env.seq, item.task_id, worker))
            else:
                return None
    except (struct.error, TypeError, ValueError):
        return None
    return b"".join(parts)


def decode_stream_result(payload) -> BatchResult:
    """One STREAM_RESULT payload -> the :class:`BatchResult`."""
    r = _stream_reader(payload, STREAM_RESULT_TAG)
    (count,) = r.unpack(_U32)
    start = r.need(count * _RESULT_ROW.size)
    items = []
    append = items.append
    for k, seq, ident, worker in _RESULT_ROW.iter_unpack(
        r.view[start : r.pos]
    ):
        if k == 1:
            item = TaskDecision(ident, worker)
        elif k == 0 or k == 2:
            if worker != 0:
                # one canonical byte string per document: the unused
                # worker slot must be zero, anything else is damage
                raise ValidationFailed(
                    f"bin1 result row kind {k} carries a nonzero worker "
                    f"field {worker}"
                )
            item = WorkerRegistered(ident) if k == 0 else TaskDecision(ident, None)
        else:
            raise ValidationFailed(
                f"bin1 result row kind must be 0, 1 or 2, got {k}"
            )
        append(StreamItemResult(seq, item))
    r.done()
    return BatchResult(items)


# --------------------------------------------------------------------- #
# packed documents                                                       #
# --------------------------------------------------------------------- #
#
# PACKED_DOC_TAG carries one whole document as a self-describing value
# tree instead of GENERIC_TAG's embedded JSON text. Same data model as
# JSON — null/bool/int/float/str/list/object, nothing more — so the
# decoded document is exactly what a json.loads round trip would have
# produced and the codec stays invisible to backends. The layout wins
# where JSON loses: full-precision floats travel as 8 raw bytes instead
# of ~18 decimal chars (and a homogeneous float list as one contiguous
# block), ints as zigzag varints, lengths as varints. Floats whose
# shortest repr is already short (0.5, 2.0 — ledger epsilons) keep the
# text form so the binary layout never pays for what JSON got free.
# Checkpoint snapshots — reservoir samples, obfuscated locations,
# ledger balances — are mostly full-precision floats, which is why the
# mesh asks for this layout on its snapshot/load frames.

_MAX_VALUE_DEPTH = 64  # value trees (HSTs nest by tree depth) vs doc tags

_P_NULL = 0x00
_P_FALSE = 0x01
_P_TRUE = 0x02
_P_INT = 0x03  # zigzag LEB128, i64 range
_P_BIGINT = 0x04  # varint length + decimal text (RNG states are u128s)
_P_F64 = 0x05  # 8 raw big-endian bytes
_P_STR = 0x06  # varint length + utf-8
_P_LIST = 0x07
_P_DICT = 0x08
_P_F64S = 0x09  # homogeneous float list: one contiguous f64 block
_P_FSHORT = 0x0A  # u8 length + shortest-repr text (short decimals)

#: repr() lengths up to this travel as text; beyond it raw f64 is
#: smaller. float(repr(v)) == v exactly (shortest-repr guarantee), so
#: the two float forms decode to the same value and only size differs.
_FSHORT_MAX = 8


def _pack_varint(n: int, out: bytearray) -> None:
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _pack_value(v, out: bytearray, depth: int) -> bool:
    """Append one packed value; False -> the document doesn't fit the
    JSON data model (the caller falls back to another layout)."""
    if depth > _MAX_VALUE_DEPTH:
        return False
    if v is None:
        out.append(_P_NULL)
        return True
    t = type(v)
    if t is bool:
        out.append(_P_TRUE if v else _P_FALSE)
        return True
    if t is int:
        if _I64_MIN <= v <= _I64_MAX:
            out.append(_P_INT)
            _pack_varint((v << 1) ^ (v >> 63), out)
        else:
            raw = str(v).encode("ascii")
            out.append(_P_BIGINT)
            _pack_varint(len(raw), out)
            out += raw
        return True
    if t is float:
        raw = repr(v)
        if len(raw) <= _FSHORT_MAX:
            out.append(_P_FSHORT)
            out.append(len(raw))
            out += raw.encode("ascii")
        else:
            out.append(_P_F64)
            out += _F64.pack(v)
        return True
    if t is str:
        raw = v.encode("utf-8")
        out.append(_P_STR)
        _pack_varint(len(raw), out)
        out += raw
        return True
    if t is list or t is tuple:  # json widens tuples to arrays
        if len(v) >= 4 and all(type(x) is float for x in v):
            # one contiguous block iff it beats per-element encoding
            # (min(...) is each element's FSHORT-or-F64 cost)
            per_elem = sum(min(9, 2 + len(repr(x))) for x in v)
            if _F64.size * len(v) <= per_elem:
                out.append(_P_F64S)
                _pack_varint(len(v), out)
                out += struct.pack(f">{len(v)}d", *v)
                return True
        out.append(_P_LIST)
        _pack_varint(len(v), out)
        return all(_pack_value(x, out, depth + 1) for x in v)
    if t is dict:
        out.append(_P_DICT)
        _pack_varint(len(v), out)
        for key, val in v.items():
            # json coerces non-str keys to text; don't replicate that
            # lossy rule here, let the GENERIC fallback own it
            if type(key) is not str:
                return False
            raw = key.encode("utf-8")
            _pack_varint(len(raw), out)
            out += raw
            if not _pack_value(val, out, depth + 1):
                return False
        return True
    return False


def encode_packed(doc) -> bytes | None:
    """One document -> a PACKED_DOC_TAG payload, or ``None`` when any
    value falls outside the JSON data model (caller picks another
    layout — this encoder never raises on shape)."""
    if not isinstance(doc, dict):
        return None
    out = bytearray()
    out += _PREFIX.pack(BIN1_MAGIC, BIN1_WIRE_VERSION, PACKED_DOC_TAG)
    if not _pack_value(doc, out, 1):
        return None
    return bytes(out)


def _unpack_varint(r: _Reader) -> int:
    shift = 0
    n = 0
    view = r.view
    while True:
        start = r.need(1)
        b = view[start]
        n |= (b & 0x7F) << shift
        if not b & 0x80:
            return n
        shift += 7
        if shift > 70:
            raise ValidationFailed(
                "bin1 packed varint runs past 10 bytes"
            )


def _take_pstr(r: _Reader) -> str:
    n = _unpack_varint(r)
    if n > r.end - r.pos:
        raise ValidationFailed(
            f"bin1 packed string length {n} exceeds the "
            f"{r.end - r.pos} payload bytes that remain"
        )
    start = r.need(n)
    try:
        return str(r.view[start : start + n], "utf-8")
    except UnicodeDecodeError as exc:
        raise ValidationFailed(
            f"bin1 string field is not valid UTF-8: {exc}"
        ) from exc


def _unpack_value(r: _Reader, depth: int):
    if depth > _MAX_VALUE_DEPTH:
        raise ValidationFailed(
            f"bin1 packed value nests deeper than {_MAX_VALUE_DEPTH} levels"
        )
    start = r.need(1)
    t = r.view[start]
    if t == _P_NULL:
        return None
    if t == _P_FALSE:
        return False
    if t == _P_TRUE:
        return True
    if t == _P_INT:
        z = _unpack_varint(r)
        return (z >> 1) ^ -(z & 1)
    if t == _P_BIGINT:
        raw = _take_pstr(r)
        try:
            return int(raw)
        except ValueError as exc:
            raise ValidationFailed(
                f"bin1 packed bigint is not decimal text: {raw[:40]!r}"
            ) from exc
    if t == _P_F64:
        (v,) = r.unpack(_F64)
        return v
    if t == _P_FSHORT:
        start = r.need(1)
        n = r.view[start]
        start = r.need(n)
        try:
            return float(str(r.view[start : start + n], "ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValidationFailed(
                f"bin1 packed short float is not decimal text: {exc}"
            ) from exc
    if t == _P_STR:
        return _take_pstr(r)
    if t == _P_F64S:
        count = _unpack_varint(r)
        if count > (r.end - r.pos) // _F64.size:
            raise ValidationFailed(
                f"bin1 packed float-array count {count} exceeds the "
                f"{r.end - r.pos} payload bytes that remain"
            )
        start = r.need(count * _F64.size)
        return list(struct.unpack_from(f">{count}d", r.view, start))
    if t == _P_LIST:
        count = _unpack_varint(r)
        if count > (r.end - r.pos):
            raise ValidationFailed(
                f"bin1 packed list count {count} exceeds the "
                f"{r.end - r.pos} payload bytes that remain"
            )
        return [_unpack_value(r, depth + 1) for _ in range(count)]
    if t == _P_DICT:
        count = _unpack_varint(r)
        if count > (r.end - r.pos):
            raise ValidationFailed(
                f"bin1 packed object count {count} exceeds the "
                f"{r.end - r.pos} payload bytes that remain"
            )
        obj = {}
        for _ in range(count):
            key = _take_pstr(r)
            obj[key] = _unpack_value(r, depth + 1)
        return obj
    raise ValidationFailed(f"unknown bin1 packed value type {t:#04x}")
