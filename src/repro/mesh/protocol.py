"""The mesh op protocol: coordinator↔worker documents, sans-IO.

A mesh connection starts as any gateway connection does — the worker
sends a :func:`~repro.gateway.protocol.hello_doc` whose feature list
carries ``role:mesh-worker`` (and, for a rejoining host, its
``family:<id>`` advertisements), the coordinator answers a ``welcome``
granting the role. Everything after the handshake is this schema:
``repro.mesh`` v1 documents inside the same length-prefixed JSON frames
(:func:`~repro.gateway.protocol.encode_frame` /
:class:`~repro.gateway.protocol.FrameDecoder`), so the mesh reuses the
gateway's framing, handshake and error taxonomy wholesale instead of
inventing a second wire layer.

Coordinator → worker *ops* mirror the cluster worker's command loop
(:mod:`repro.cluster.worker`), with every payload JSON-pure — shard
snapshots already are (:mod:`repro.cluster.snapshot`), which is what
lets checkpoints cross host boundaries unchanged:

=============  ==========================  ===============================
op             body                        reply body
=============  ==========================  ===============================
``configure``  ``batch_size``              ``{}``
``create``     ``key``, ``spec``           ``{"key": ...}``
``load``       ``key``, ``snapshots``      ``{"key": ...}``
               (chain) *or* ``snapshot``
               (one base doc)
``drop``       ``key``                     ``{"key": ...}``
``events``     ``ops``                     ``{"results": [[tid,wid,key]]}``
``snapshot``   ``key`` [, ``mode``,        ``{"key": ..., "snapshot": ...}``
               ``checkpoint``,
               ``parent``]
``flush``      —                           ``{}``
``report``     —                           ``{"report": {key: row}}``
``ping``       —                           ``{}``
``crash``      —                           *process exits* (tests)
=============  ==========================  ===============================

The ``snapshot`` extras are the delta-checkpoint protocol: ``mode``
``"delta"`` asks for only the cells changed since ``parent`` (the
worker falls back to a base document when it no longer has that
cursor), and ``checkpoint`` is the id the produced document carries so
later deltas can chain onto it. Old coordinators that omit the extras
get plain base snapshots; old workers that ignore them answer bases the
coordinator absorbs as rebases — the fields are additive, not a wire
version bump.

Every op carries a ``seq`` the worker echoes in its reply, so a
coordinator may keep several ops in flight per peer (different shard
families pipeline over one socket) and still match answers. Failures
come back as a ``fail`` document bearing the api error taxonomy's
stable codes. Malformed documents raise
:class:`~repro.api.errors.ValidationFailed` — never a raw ``KeyError``.
"""

from __future__ import annotations

from ..api.errors import UnsupportedVersion, ValidationFailed

__all__ = [
    "MESH_SCHEMA",
    "MESH_VERSION",
    "OP_KINDS",
    "op_doc",
    "reply_doc",
    "fail_doc",
    "parse_op",
    "parse_reply",
]

MESH_SCHEMA = "repro.mesh"
MESH_VERSION = 1

#: Ops a worker serves, the wire-frozen v1 vocabulary.
OP_KINDS = (
    "configure",
    "create",
    "load",
    "drop",
    "events",
    "snapshot",
    "flush",
    "report",
    "ping",
    "crash",
)

_REPLY_KINDS = ("reply", "fail")


def op_doc(op: str, seq: int, body: dict | None = None) -> dict:
    """One coordinator→worker op document."""
    if op not in OP_KINDS:
        raise ValueError(f"unknown mesh op {op!r}")
    return {
        "schema": MESH_SCHEMA,
        "version": MESH_VERSION,
        "kind": op,
        "seq": int(seq),
        "body": dict(body or {}),
    }


def reply_doc(seq: int, body: dict | None = None) -> dict:
    """A worker's success answer to the op carrying ``seq``."""
    return {
        "schema": MESH_SCHEMA,
        "version": MESH_VERSION,
        "kind": "reply",
        "seq": int(seq),
        "body": dict(body or {}),
    }


def fail_doc(seq: int, code: str, message: str, detail: str = "") -> dict:
    """A worker's failure answer: the api error taxonomy, mesh-framed."""
    return {
        "schema": MESH_SCHEMA,
        "version": MESH_VERSION,
        "kind": "fail",
        "seq": int(seq),
        "body": {
            "code": str(code),
            "message": str(message),
            "detail": str(detail),
        },
    }


def _check_envelope(doc, kinds) -> tuple[str, int, dict]:
    if not isinstance(doc, dict):
        raise ValidationFailed(
            f"mesh document must be an object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema != MESH_SCHEMA:
        raise UnsupportedVersion(
            f"foreign mesh schema {schema!r} (this peer speaks {MESH_SCHEMA!r})"
        )
    version = doc.get("version")
    if not isinstance(version, int) or version < 1 or version > MESH_VERSION:
        raise UnsupportedVersion(
            f"mesh protocol version {version!r} outside supported "
            f"range 1..{MESH_VERSION}"
        )
    kind = doc.get("kind")
    if kind not in kinds:
        raise ValidationFailed(f"unexpected mesh document kind {kind!r}")
    seq = doc.get("seq")
    if not isinstance(seq, int) or seq < 0:
        raise ValidationFailed(f"mesh seq must be a non-negative int, got {seq!r}")
    body = doc.get("body")
    if not isinstance(body, dict):
        raise ValidationFailed("mesh document body must be an object")
    return kind, seq, body


def parse_op(doc) -> tuple[str, int, dict]:
    """Validate one op document; returns ``(op, seq, body)``."""
    return _check_envelope(doc, OP_KINDS)


def parse_reply(doc) -> tuple[str, int, dict]:
    """Validate one reply document; returns ``(kind, seq, body)`` where
    ``kind`` is ``"reply"`` or ``"fail"``."""
    return _check_envelope(doc, _REPLY_KINDS)
