"""Mesh worker: a :class:`~repro.cluster.worker.ShardHost` on a socket.

One worker process dials the coordinator, introduces itself with a
gateway ``hello`` whose feature list carries ``role:mesh-worker`` (plus
``family:<id>`` advertisements when it already holds shard state), and
then serves :mod:`repro.mesh.protocol` ops over the same length-prefixed
JSON frames the gateway uses. The serving core is the *unchanged*
cluster :class:`~repro.cluster.worker.ShardHost` — the mesh changes the
transport under a worker, never its shard semantics, which is what keeps
mesh assignments bit-identical to the local cluster's.

The loop is single-threaded and strictly FIFO over the socket: ops are
applied in arrival order and replies carry the op's ``seq`` back. That
FIFO is a correctness lever, not a simplification — a ``snapshot`` or
``flush`` op queued behind ``events`` ops observes all of them, so the
coordinator's barrier ordering holds on the worker without any
worker-side locking.

Failure discipline mirrors the cluster worker: any exception while
serving an op answers a structured ``fail`` document (stable api error
codes) and then the process exits — a broken worker is indistinguishable
from a dead one on purpose, so the coordinator has exactly one recovery
path (snapshot restore + journal replay onto a surviving peer).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import socket
import sys
import time

from ..api.errors import map_exception
from ..cluster.worker import ShardHost
from ..gateway.protocol import (
    BIN1_CODEC,
    JSON_CODEC,
    MESH_WORKER_ROLE,
    FrameDecoder,
    codec_feature,
    encode_frame,
    family_features,
    goodbye_doc,
    granted_codec,
    hello_doc,
    is_gateway_doc,
    parse_welcome,
    role_feature,
)
from ..obs.trace import parse_trace_context, span_record
from .protocol import fail_doc, parse_op, reply_doc

__all__ = [
    "connect_worker",
    "run_worker",
    "serve_connection",
    "spawn_cli_worker",
    "spawn_local_worker",
]


def _recv_frames(sock: socket.socket, decoder: FrameDecoder) -> list[dict]:
    """Block until at least one complete frame arrives; [] means EOF."""
    while True:
        data = sock.recv(65536)
        if not data:
            decoder.check_eof()
            return []
        frames = decoder.feed(data)
        if frames:
            return frames


def connect_worker(
    address: tuple[str, int],
    *,
    name: str = "mesh-worker",
    families=(),
    codec: str = BIN1_CODEC,
    connect_window_s: float = 10.0,
) -> tuple[socket.socket, FrameDecoder, list[dict], str]:
    """Dial the coordinator and complete the role handshake.

    Retries the TCP connect inside ``connect_window_s`` (a CLI worker
    often races the coordinator's ``listen()``), then sends the hello and
    insists the welcome grants the mesh-worker role — a plain gateway
    would answer a feature-less welcome, and serving assignment requests
    as if they were shard ops helps nobody.

    ``codec`` is the *offer* (:data:`JSON_CODEC` offers nothing); the
    returned codec is what the welcome granted, and it is what every
    reply frame must be encoded in. The decoder stays in sniffing mode
    because ops glued behind the json welcome may already ride the
    granted codec.
    """
    deadline = time.monotonic() + connect_window_s
    while True:
        try:
            sock = socket.create_connection(address, timeout=connect_window_s)
            # ops are request/response frames; Nagle + delayed ACK would
            # add ~40ms to every partial-segment tail (see gateway.remote)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
    try:
        offered = () if codec == JSON_CODEC else (str(codec),)
        features = (
            role_feature(MESH_WORKER_ROLE),
            *family_features(families),
            *(codec_feature(c) for c in offered),
        )
        sock.sendall(
            encode_frame(
                hello_doc(client=f"repro.mesh.worker/{name}", features=features)
            )
        )
        decoder = FrameDecoder()
        frames = _recv_frames(sock, decoder)
        if not frames:
            raise ConnectionError("coordinator closed during handshake")
        first = frames[0]
        if not is_gateway_doc(first):
            raise ConnectionError(f"coordinator rejected the hello: {first!r}")
        _, _, _, granted = parse_welcome(first)
        if role_feature(MESH_WORKER_ROLE) not in granted:
            raise ConnectionError(
                f"peer at {address!r} did not grant the mesh-worker role "
                "(is it a plain gateway?)"
            )
        session_codec = granted_codec(granted, offered)
    except BaseException:
        sock.close()
        raise
    sock.settimeout(None)
    # ops may already ride glued to the welcome — hand them to the loop
    return sock, decoder, frames[1:], session_codec


def serve_connection(
    sock: socket.socket,
    decoder: FrameDecoder,
    *,
    pending: list | None = None,
    codec: str = JSON_CODEC,
) -> None:
    """The op loop: apply coordinator ops to a local ShardHost until the
    coordinator says goodbye or the connection dies.

    ``pending`` carries frames that arrived glued to the welcome. The
    host is built on the first ``configure`` op; ops before it fail.
    ``codec`` (fixed at welcome) frames every reply.
    """
    host: ShardHost | None = None
    queue = list(pending or ())
    while True:
        if not queue:
            queue = _recv_frames(sock, decoder)
            if not queue:
                return  # coordinator went away; nothing left to serve
        doc = queue.pop(0)
        if is_gateway_doc(doc):
            return  # goodbye (any lifecycle frame ends the service loop)
        seq = -1
        try:
            op, seq, body = parse_op(doc)
            if op == "crash":
                # test hook: die like a SIGKILLed container — no goodbye
                os._exit(17)
            if op == "configure":
                size = int(body["batch_size"])
                if host is not None and host.batch_size != size:
                    raise ValueError(
                        f"host already configured with batch_size="
                        f"{host.batch_size}, refusing {size}"
                    )
                if host is None:
                    host = ShardHost(size)
                out: dict = {}
            elif op == "ping":
                out = {}
            elif host is None:
                raise RuntimeError(f"op {op!r} before configure")
            elif op == "create":
                host.create(str(body["key"]), body["spec"])
                out = {"key": body["key"]}
            elif op == "load":
                # "snapshots" carries a base+delta chain; "snapshot" the
                # single-document form older coordinators send
                docs = body.get("snapshots", body.get("snapshot"))
                host.load(str(body["key"]), docs)
                out = {"key": body["key"]}
            elif op == "drop":
                host.drop(str(body["key"]))
                out = {"key": body["key"]}
            elif op == "events":
                # tracing: a valid context on the op gets the execution
                # timed and the span handed back in the reply (the
                # coordinator's tracer adopts it — the worker has no
                # sink of its own); malformed/absent contexts cost
                # nothing and change nothing
                ctx = parse_trace_context(body.get("trace"))
                if ctx is not None:
                    # span *timestamp*, never decision logic: wall time
                    # labels the trace record and nothing replays it
                    start_wall = time.time()  # lint: ok RL103
                    start_perf = time.perf_counter()
                results = host.apply(body["ops"])
                out = {"results": [list(row) for row in results]}
                if ctx is not None:
                    out["spans"] = [
                        span_record(
                            "worker.execute",
                            ctx,
                            start_s=start_wall,
                            duration_s=time.perf_counter() - start_perf,
                            attrs={"n_ops": len(body["ops"])},
                            service="mesh-worker",
                        )
                    ]
            elif op == "snapshot":
                out = {
                    "key": body["key"],
                    "snapshot": host.snapshot(
                        str(body["key"]),
                        mode=str(body.get("mode", "base")),
                        checkpoint=body.get("checkpoint"),
                        parent=body.get("parent"),
                    ),
                }
            elif op == "flush":
                host.flush()
                out = {}
            elif op == "report":
                out = {
                    "report": {
                        key: {**row, "snapshot": dataclasses.asdict(row["snapshot"])}
                        for key, row in host.report().items()
                    }
                }
            else:  # pragma: no cover - parse_op already rejects unknown ops
                raise ValueError(f"unhandled mesh op {op!r}")
        except Exception as exc:
            info = map_exception(exc).info()
            try:
                sock.sendall(
                    encode_frame(
                        fail_doc(seq, info.code, info.message, info.detail),
                        codec=codec,
                    )
                )
            except OSError:
                pass
            return
        # snapshot replies are float-heavy; bin1 sessions pack them
        sock.sendall(
            encode_frame(
                reply_doc(seq, out), codec=codec, packed=op == "snapshot"
            )
        )


def run_worker(
    address: tuple[str, int],
    *,
    name: str = "mesh-worker",
    families=(),
    codec: str = BIN1_CODEC,
    connect_window_s: float = 10.0,
) -> None:
    """Entry point of one mesh worker process: dial, handshake, serve."""
    sock, decoder, pending, session_codec = connect_worker(
        address,
        name=name,
        families=families,
        codec=codec,
        connect_window_s=connect_window_s,
    )
    try:
        serve_connection(sock, decoder, pending=pending, codec=session_codec)
        try:
            sock.sendall(
                encode_frame(goodbye_doc("worker done"), codec=session_codec)
            )
        except OSError:
            pass
    finally:
        sock.close()


# --------------------------------------------------------------------- #
# spawn helpers                                                          #
# --------------------------------------------------------------------- #


def _worker_entry(host: str, port: int, name: str, codec: str) -> None:
    run_worker((host, port), name=name, codec=codec)


def spawn_local_worker(
    address: tuple[str, int],
    *,
    name: str = "mesh-worker",
    codec: str = BIN1_CODEC,
):
    """Fork a worker subprocess in-repo (tests, MeshBackend default).

    Fork keeps startup cheap and inherits ``sys.path``; spawn is the
    fallback where fork does not exist. Returns the started
    ``multiprocessing.Process`` (daemonic, SIGKILL-able via ``.pid``).
    """
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    ctx = multiprocessing.get_context(method)
    proc = ctx.Process(
        target=_worker_entry,
        args=(address[0], int(address[1]), name, str(codec)),
        name=f"repro-mesh-{name}",
        daemon=True,
    )
    proc.start()
    return proc


def spawn_cli_worker(
    address: tuple[str, int],
    *,
    name: str = "mesh-worker",
    codec: str = BIN1_CODEC,
):
    """Launch ``python -m repro.mesh --worker`` as a real OS process.

    This is the deployment shape — a standalone process that knows the
    coordinator only by address — used by the smoke gate and the example
    so the CLI path stays continuously exercised. Returns the
    ``subprocess.Popen``.
    """
    import subprocess

    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.mesh",
            "--worker",
            "--connect",
            f"{address[0]}:{int(address[1])}",
            "--name",
            name,
            "--codec",
            str(codec),
        ],
        env=env,
    )
