"""repro.mesh — a multi-host worker mesh behind a non-blocking coordinator.

The cluster runtime (:mod:`repro.cluster`) proves the paper's assignment
mechanism survives being cut into shard families, snapshotted, killed
and replayed — but its workers are ``multiprocessing`` children of the
coordinator. This package takes the same worker core across a *socket*
boundary: workers are standalone processes (``python -m repro.mesh
--worker --connect HOST:PORT``) that dial a coordinator, negotiate the
``role:mesh-worker`` handshake over the gateway wire form, and serve
shard families via :mod:`repro.mesh.protocol` ops.

The pieces:

* :mod:`~repro.mesh.protocol` — the sans-IO op/reply vocabulary
  (``repro.mesh`` v1 documents in gateway frames, seq-matched so ops
  pipeline per connection);
* :mod:`~repro.mesh.worker` — one process: an unchanged cluster
  :class:`~repro.cluster.worker.ShardHost` serving ops FIFO off a
  socket, failing loudly then exiting;
* :mod:`~repro.mesh.coordinator` — :class:`MeshCoordinator`: accepts
  peers, places shard families across them, dispatches per-family
  through the :class:`~repro.runtime.PipelineScheduler` (no global
  dispatch lock; only flush/report/checkpoint are barriers), and on a
  dead connection restores the lost families onto survivors from
  checkpoint snapshots plus journal replay — bit-identical to the
  local cluster by construction.

The serving adapter is :class:`repro.api.backends.MeshBackend`
(``make_backend("mesh", spec)``), which joins the cross-backend
conformance matrix.

CLI::

    python -m repro.mesh --smoke                       # CI gate
    python -m repro.mesh --worker --connect HOST:PORT  # one worker
"""

from .coordinator import MeshCoordinator, MeshError, PeerLost
from .protocol import (
    MESH_SCHEMA,
    MESH_VERSION,
    OP_KINDS,
    fail_doc,
    op_doc,
    parse_op,
    parse_reply,
    reply_doc,
)
from .worker import (
    connect_worker,
    run_worker,
    serve_connection,
    spawn_cli_worker,
    spawn_local_worker,
)

__all__ = [
    "MESH_SCHEMA",
    "MESH_VERSION",
    "MeshCoordinator",
    "MeshError",
    "OP_KINDS",
    "PeerLost",
    "connect_worker",
    "fail_doc",
    "op_doc",
    "parse_op",
    "parse_reply",
    "reply_doc",
    "run_worker",
    "serve_connection",
    "spawn_cli_worker",
    "spawn_local_worker",
]
