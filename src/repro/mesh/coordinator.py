"""The mesh coordinator: worker peers on sockets, dispatch on keys.

:class:`MeshCoordinator` is the multi-host sibling of the multiprocess
:class:`~repro.cluster.coordinator.ClusterCoordinator`. It keeps the
engine's event contract (``process``/``flush``/``report``/``run``) but
its workers are independent processes — possibly on other machines —
that dialed in over the gateway wire and hold shard families behind
:mod:`repro.mesh.protocol` ops.

What is deliberately *different* from the cluster coordinator:

* **no single dispatch lock.** Event chunks are absorbed into the shared
  :class:`~repro.cluster.dispatch.FamilyJournal` and then delivered by
  per-family jobs on a :class:`~repro.runtime.PipelineScheduler` — the
  same keyed-FIFO/barrier core the gateway schedules requests on.
  Different families flow to their peers concurrently; only
  flush/report/checkpoint are global barriers. Per-family FIFO plus the
  journal's contiguous-segment delivery keeps per-shard op order exactly
  the serial order, which is what the bit-exactness guarantee needs;
* **submit-time high-water marks.** ``process()`` keeps appending to the
  journal while earlier jobs are still in flight, so every family job
  carries the journal position captured when it was submitted and never
  delivers past it — a later flush cannot have its cohort cut points
  dragged forward by ops that arrived after it was requested. Barrier
  jobs take their marks when they *execute* (the scheduler has already
  drained everything submitted before them, so execution-time marks are
  exactly the pre-barrier stream);
* **failover is reassignment, not respawn.** The coordinator does not
  own worker processes; when a connection dies mid-stream the dead
  peer's families are handed to the surviving peer with the lightest
  load, restored from their last checkpoint snapshots (JSON-pure, they
  cross the wire unchanged) and replayed from the journal — the same
  snapshot+replay discipline the cluster proves bit-deterministic.
  Duplicate task results from the dead peer deduplicate (first write
  wins). A second death during recovery just repeats the handling on
  the next survivor; only losing *every* peer is fatal.

Telemetry rides the existing reservoir machinery
(:class:`~repro.service.metrics.SampleReservoir`): per-peer dispatch
depth sampled at every op send, checkpoint snapshot sizes in encoded
bytes, and checkpoint wall-times, all summarized by :meth:`telemetry`
together with the scheduler's live per-family queue depths.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout

from ..api.errors import ValidationFailed, map_exception
from ..api.messages import to_wire
from ..cluster.balancer import ClusterRouter, family_of, key_order
from ..cluster.dispatch import FamilyJournal
from ..gateway.protocol import (
    BIN1_CODEC,
    JSON_CODEC,
    MESH_WORKER_ROLE,
    FrameDecoder,
    advertised_families,
    codec_feature,
    encode_frame,
    goodbye_doc,
    is_gateway_doc,
    negotiate_codec,
    offered_codecs,
    parse_hello,
    peer_role,
    role_feature,
    welcome_doc,
)
from ..geometry.box import Box
from ..obs.registry import MetricsRegistry
from ..obs.trace import current_context
from ..runtime import PipelineScheduler
from ..service.events import RequestQueue, TaskArrival, WorkerArrival
from ..service.metrics import (
    SampleReservoir,
    ServiceReport,
    ShardSnapshot,
    build_report,
    summarize_reservoir,
)
from ..utils import ensure_rng, keyed_shard_seed
from .protocol import op_doc, parse_reply

__all__ = ["MeshCoordinator", "MeshError", "PeerLost"]


class MeshError(RuntimeError):
    """A mesh peer failed, stalled, or the mesh cannot recover."""


class PeerLost(MeshError):
    """One peer's connection is gone; its families need a new home."""

    def __init__(self, peer: str) -> None:
        super().__init__(f"mesh worker {peer!r} is gone")
        self.peer = peer


class MeshPeer:
    """One connected worker: a socket, a reader thread, seq-matched calls.

    ``call`` is thread-safe and may be issued from several family jobs at
    once — ops pipeline over the one socket (the worker serves them FIFO)
    and the reader thread matches replies back by ``seq``. Death, however
    it manifests (EOF, reset, a frame that fails to parse), resolves
    every in-flight call to :class:`PeerLost`.
    """

    def __init__(
        self,
        name: str,
        sock: socket.socket,
        features,
        *,
        label: str = "",
        codec: str = JSON_CODEC,
        liveness_timeout: float = 120.0,
    ) -> None:
        self.name = name
        self.sock = sock
        self.features = tuple(features)
        self.label = label
        #: negotiated per-peer payload codec — a mixed mesh legitimately
        #: runs some peers binary and some json, fixed at each welcome
        self.codec = codec
        self.families = advertised_families(features)
        self.liveness_timeout = liveness_timeout
        self.dead = False  # guarded-by: _lock
        self.configured = False  # guarded-by: config_lock
        self.calls = 0  # guarded-by: _lock
        self.outstanding = 0  # guarded-by: _lock
        #: outstanding-ops-at-send samples: per-peer dispatch depth
        self.depth = SampleReservoir()
        self.config_lock = threading.Lock()
        self._seq = 0  # guarded-by: _lock
        self._pending: dict[int, Future] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._wlock = threading.Lock()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"mesh-peer-{name}", daemon=True
        )

    def start(self) -> None:
        self._reader.start()

    # ------------------------------------------------------------------ #
    # reply reader                                                        #
    # ------------------------------------------------------------------ #

    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = self.sock.recv(65536)
                if not data:
                    return
                for doc in decoder.feed(data):
                    if is_gateway_doc(doc):
                        return  # the worker said goodbye
                    kind, seq, body = parse_reply(doc)
                    with self._lock:
                        fut = self._pending.pop(seq, None)
                    if fut is not None and not fut.done():
                        fut.set_result((kind, body))
        except Exception:
            # a peer whose stream cannot be parsed is as gone as one
            # whose socket died — there is no resynchronizing a framed
            # stream whose length prefix lied
            return
        finally:
            self.abandon()

    def mark_dead(self) -> None:
        """Flip ``dead`` under the peer lock.

        New :meth:`call` attempts fail fast from here on; in-flight
        calls are untouched (that is :meth:`abandon`'s job).
        """
        with self._lock:
            self.dead = True

    def abandon(self) -> None:
        """Mark dead and fail every in-flight call with :class:`PeerLost`."""
        with self._lock:
            self.dead = True
            pending = list(self._pending.values())
            self._pending.clear()
        for fut in pending:
            if not fut.done():
                fut.set_result(None)  # None -> PeerLost at the call site

    # ------------------------------------------------------------------ #
    # calls                                                               #
    # ------------------------------------------------------------------ #

    def call(self, op: str, body: dict, *, packed: bool = False) -> dict:
        """Send one op, block for its reply; the reply body on success.

        ``packed`` asks a bin1 session for the PACKED_DOC_TAG layout —
        used for snapshot-carrying ops, where the body is mostly floats.
        """
        with self._lock:
            if self.dead:
                raise PeerLost(self.name)
            self._seq += 1
            seq = self._seq
            fut: Future = Future()
            self._pending[seq] = fut
            self.calls += 1
            self.outstanding += 1
            self.depth.record(float(self.outstanding))
        try:
            frame = encode_frame(
                op_doc(op, seq, body), codec=self.codec, packed=packed
            )
            try:
                with self._wlock:
                    self.sock.sendall(frame)
            except OSError:
                self.abandon()
                raise PeerLost(self.name) from None
            try:
                answer = fut.result(timeout=self.liveness_timeout)
            except FutureTimeout:
                # alive but wedged: a dead peer would have EOFed the
                # reader; surface the stall instead of hanging forever
                raise MeshError(
                    f"mesh worker {self.name!r} stopped answering {op!r}"
                ) from None
            if answer is None:
                raise PeerLost(self.name)
            kind, reply = answer
            if kind == "fail":
                raise MeshError(
                    f"mesh worker {self.name!r} failed {op!r}: "
                    f"[{reply.get('code')}] {reply.get('message')}"
                )
            return reply
        finally:
            with self._lock:
                self._pending.pop(seq, None)
                self.outstanding -= 1

    def shutdown(self) -> None:
        """Polite goodbye if possible, then tear the connection down."""
        if not self.dead:
            try:
                with self._wlock:
                    self.sock.sendall(
                        encode_frame(
                            goodbye_doc("mesh closing"), codec=self.codec
                        )
                    )
            except OSError:
                pass
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
        if self._reader.is_alive() and self._reader is not threading.current_thread():
            self._reader.join(timeout=5.0)
        self.abandon()


class MeshCoordinator:
    """Shard families on socket peers behind a pipelined dispatch core.

    Parameters
    ----------
    region, shards, grid_nx, epsilon, budget_capacity, batch_size, seed:
        Same meaning as on the cluster coordinator; shard seeds derive
        per routing key (:func:`~repro.utils.keyed_shard_seed`) so mesh,
        cluster and engine grow bit-identical shard streams.
    expected_workers:
        Peers :meth:`start` waits for before placing families. Workers
        may keep joining later; they receive families only on failover.
    chunk_size, checkpoint_every:
        Dispatch batch size and the period (in events) of automatic
        snapshot barriers; ``0`` disables periodic checkpoints (failover
        then replays from stream start).
    rebase_every:
        Delta-chain length cap. Once a shard's last base checkpoint has
        this many deltas chained onto it, the next barrier requests a
        fresh base (rebase) instead of another delta; ``0`` makes every
        barrier a full snapshot.
    host, port:
        Listen address; port ``0`` picks a free port (see ``address``).
    dispatch_workers:
        Scheduler pool threads (``None`` = runtime default).
    """

    def __init__(
        self,
        region: Box,
        shards: tuple[int, int] = (2, 2),
        *,
        expected_workers: int = 2,
        grid_nx: int = 12,
        epsilon: float = 0.5,
        budget_capacity: float = 2.0,
        batch_size: int = 256,
        chunk_size: int = 256,
        checkpoint_every: int = 8192,
        rebase_every: int = 8,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        liveness_timeout: float = 120.0,
        handshake_timeout: float = 10.0,
        dispatch_workers: int | None = None,
        tracer=None,
        codecs: tuple = (BIN1_CODEC,),
    ) -> None:
        if expected_workers < 1:
            raise ValueError(f"need at least one worker, got {expected_workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables)")
        if rebase_every < 0:
            raise ValueError("rebase_every must be >= 0 (0 = always full)")
        from ..service.sharding import ShardMap

        self.shard_map = ShardMap(region, *shards)
        self.router = ClusterRouter(self.shard_map)
        self.expected_workers = int(expected_workers)
        self.grid_nx = grid_nx
        self.epsilon = epsilon
        self.budget_capacity = budget_capacity
        self.batch_size = batch_size
        self.chunk_size = chunk_size
        self.checkpoint_every = checkpoint_every
        self.rebase_every = int(rebase_every)
        self.seed = (
            int(ensure_rng(seed).integers(2**31))
            if not isinstance(seed, int)
            else seed
        )
        self.host = host
        self.port = port
        self.liveness_timeout = liveness_timeout
        self.handshake_timeout = handshake_timeout
        #: payload codecs grantable to dialing workers (json always
        #: implied); each peer's codec is negotiated at its own welcome,
        #: so one mesh freely mixes binary and json workers
        self.codecs = tuple(codecs)

        self._state = threading.RLock()
        self._wake = threading.Condition(self._state)
        self._journal = FamilyJournal(self.router)
        #: family id -> peer name
        self.ownership: dict[int, str] = {}  # guarded-by: _state, _wake
        self._installed: dict[int, bool] = {}  # guarded-by: _state, _wake
        self._specs: dict[str, dict] = {}  # guarded-by: _state, _wake
        #: key -> [base doc, delta doc, ...] chain (see cluster.snapshot)
        self._checkpoints: dict[str, list[dict]] = {}  # guarded-by: _state, _wake
        self._ckpt_seq = 0  # guarded-by: _state, _wake
        self._results: dict[int, int | None] = {}  # guarded-by: _state, _wake
        self._peers: dict[str, MeshPeer] = {}  # guarded-by: _state, _wake
        self._join_order: list[str] = []  # guarded-by: _state, _wake
        self._alive: set[str] = set()  # guarded-by: _state, _wake
        self._failure: BaseException | None = None  # guarded-by: _state, _wake
        self._events_since_checkpoint = 0  # guarded-by: _state, _wake
        self.now = 0.0  # guarded-by: _state, _wake
        self.failovers = 0  # guarded-by: _state, _wake
        self.rejected_handshakes = 0  # guarded-by: _state, _wake

        self._scheduler = PipelineScheduler(
            max_workers=dispatch_workers, name="repro-mesh"
        )
        self._listener: socket.socket | None = None
        self._acceptor: threading.Thread | None = None
        self.address: tuple[str, int] | None = None
        self._started = False  # guarded-by: _state, _wake
        self._closed = False  # guarded-by: _state, _wake

        # telemetry reservoirs (exact counts/means, bounded samples),
        # re-homed on a MetricsRegistry: the registry holds views of the
        # same reservoir objects, so checkpoint/telemetry bit-exactness
        # is untouched while snapshot() reads everything in one place
        self.tracer = tracer
        self.registry = MetricsRegistry()
        self._snapshot_bytes = self.registry.adopt_histogram(
            "mesh.checkpoint.snapshot_bytes", SampleReservoir()
        )
        self._checkpoint_s = self.registry.adopt_histogram(
            "mesh.checkpoint.seconds", SampleReservoir()
        )
        self._delta_bytes = self.registry.adopt_histogram(
            "mesh.checkpoint.delta_bytes", SampleReservoir()
        )
        self.registry.gauge_fn(
            "mesh.checkpoint.chain_len",
            lambda: max(
                (len(c) for c in self._checkpoints.values()), default=0
            ),
        )
        self.registry.gauge_fn(
            "runtime.scheduler.key_depth", self._scheduler.key_depths
        )

        # test hooks: called with the lost peer's name / each snapshotted
        # key, outside coordinator locks — failover tests SIGKILL from here
        self._test_on_failover = None
        self._test_mid_checkpoint = None

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def listen(self) -> tuple[str, int]:
        """Open the listener (idempotent); returns the bound address."""
        with self._state:
            if self._closed:
                raise MeshError("coordinator was closed; create a new one")
            if self._listener is None:
                self._listener = socket.create_server((self.host, self.port))
                self.address = self._listener.getsockname()[:2]
                self._acceptor = threading.Thread(
                    target=self._accept_loop, name="mesh-accept", daemon=True
                )
                self._acceptor.start()
            return self.address

    def start(self) -> None:
        """Wait for the expected peers, place families, build all shards.

        Untimed setup, exactly like the cluster's :meth:`start`: HST
        construction happens before any measured serving window.
        """
        if self._started:
            return
        self.listen()
        with self._wake:
            ok = self._wake.wait_for(
                lambda: len(self._alive) >= self.expected_workers
                or self._failure is not None,
                timeout=self.liveness_timeout,
            )
            self._check_failure_locked()
            if not ok:
                raise MeshError(
                    f"only {len(self._alive)} of {self.expected_workers} "
                    "mesh workers joined in time"
                )
            order = [n for n in self._join_order if n in self._alive]
            n_fams = self.shard_map.n_shards
            # a rejoining worker that advertised families keeps them ...
            for name in order:
                for fam in self._peers[name].families:
                    if 0 <= fam < n_fams and fam not in self.ownership:
                        self.ownership[fam] = name
            # ... the rest spread round-robin in join order
            for fam in range(n_fams):
                self.ownership.setdefault(fam, order[fam % len(order)])
                self._installed.setdefault(fam, False)
            for key in self.router.keys():
                self._specs[key] = self._spec_for(key)
            self._started = True
        for fam in sorted(self.ownership):
            self._scheduler.submit(fam, self._family_job, fam, 0)
        self._await(self._scheduler.submit(None, lambda: None), "shard builds")
        self._check_failure()

    def close(self) -> None:
        """Say goodbye to every peer and stop the dispatch machinery."""
        with self._state:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
            peers = list(self._peers.values())
            listener = self._listener
        if listener is not None:
            listener.close()  # acceptor's accept() raises and exits
        for peer in peers:
            peer.shutdown()
        self._scheduler.shutdown(wait=True)
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
        if self.tracer is not None:
            self.tracer.flush()

    def __enter__(self) -> "MeshCoordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _spec_for(self, key: str) -> dict:
        box = self.router.shard_box(key)
        return {
            "box": [box.xmin, box.ymin, box.xmax, box.ymax],
            "grid_nx": self.grid_nx,
            "epsilon": self.epsilon,
            "budget_capacity": self.budget_capacity,
            "seed": keyed_shard_seed(self.seed, key),
        }

    # ------------------------------------------------------------------ #
    # peer admission                                                      #
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._handshake, args=(conn,), daemon=True
            ).start()

    def _handshake(self, conn: socket.socket) -> None:
        # mirror the worker side: op dispatch is latency-bound round trips
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        conn.settimeout(self.handshake_timeout)
        decoder = FrameDecoder()
        try:
            frames: list[dict] = []
            while not frames:
                data = conn.recv(65536)
                if not data:
                    conn.close()
                    return
                frames = decoder.feed(data)
            api_version, client, features = parse_hello(frames[0])
            role = peer_role(features)
            if role != MESH_WORKER_ROLE:
                raise ValidationFailed(
                    "this endpoint coordinates mesh workers; hello "
                    f"advertises role {role!r}"
                )
            codec = negotiate_codec(offered_codecs(features), self.codecs)
        except OSError:
            conn.close()
            return
        except Exception as exc:
            # junk hello: answer the structured taxonomy, then close —
            # the same discipline as the gateway's handshake
            with self._state:
                self.rejected_handshakes += 1
            try:
                conn.sendall(encode_frame(to_wire(map_exception(exc).info())))
            except OSError:
                pass
            conn.close()
            return
        conn.settimeout(None)
        with self._wake:
            if self._closed:
                conn.close()
                return
            name = f"w{len(self._join_order)}"
            peer = MeshPeer(
                name,
                conn,
                features,
                label=client,
                codec=codec,
                liveness_timeout=self.liveness_timeout,
            )
            self._peers[name] = peer
            self._join_order.append(name)
            session = len(self._join_order) - 1
            self.registry.adopt_histogram(
                "mesh.peer.dispatch_depth", peer.depth, peer=name
            )
        # The welcome must hit the wire before the peer is published as
        # alive — publishing first lets a dispatch thread race its
        # `configure` ahead of the welcome, and the worker (rightly)
        # treats a welcome-less peer as not a coordinator.
        try:
            granted = (role_feature(MESH_WORKER_ROLE),) + (
                (codec_feature(codec),) if codec != JSON_CODEC else ()
            )
            conn.sendall(
                encode_frame(
                    welcome_doc(
                        api_version,
                        "repro.mesh.coordinator",
                        session,
                        features=granted,
                    )
                )
            )
        except OSError:
            peer.abandon()
            conn.close()
            return
        peer.start()
        with self._wake:
            if self._closed or peer.dead:
                return
            self._alive.add(name)
            self._wake.notify_all()

    # ------------------------------------------------------------------ #
    # event-driven operation                                              #
    # ------------------------------------------------------------------ #

    @property
    def assignments(self) -> list[tuple[int, int]]:
        """All ``(task_id, worker_id)`` pairs decided so far, stream order."""
        with self._state:
            return [
                (tid, self._results[tid])
                for tid in self._journal.task_order
                if self._results.get(tid) is not None
            ]

    @property
    def tasks_answered(self) -> int:
        with self._state:
            return sum(
                1 for tid in self._journal.task_order if tid in self._results
            )

    def process(self, events) -> None:
        """Absorb an event stream and fan it out to the peers.

        Returns as soon as everything is journaled and scheduled; results
        stream back through the peer readers (:meth:`result_of` blocks on
        one). Raises promptly if the mesh has already failed.
        """
        self.start()
        if isinstance(events, RequestQueue):
            events = iter(events)
        chunk: list = []
        for event in events:
            if not isinstance(event, (WorkerArrival, TaskArrival)):
                raise TypeError(f"not a service event: {event!r}")
            chunk.append(event)
            if len(chunk) >= self.chunk_size:
                self._dispatch(chunk)
                chunk = []
        if chunk:
            self._dispatch(chunk)

    def _dispatch(self, chunk: list) -> None:
        self._check_failure()
        # capture the caller's span (e.g. the gateway's scheduler.execute,
        # live on this thread) at submit time: the family jobs run later,
        # on scheduler threads, but must parent under the request that
        # journaled their ops
        ctx = current_context() if self.tracer is not None else None
        queued_perf = time.perf_counter() if ctx is not None else 0.0
        with self._state:
            for event in chunk:
                self.now = max(self.now, float(event.time))
            touched = self._journal.absorb(chunk)
            # submit-time high-water marks: a family job never delivers
            # ops journaled after it was scheduled
            marks = {fam: self._journal.end(fam) for fam in touched}
            self._events_since_checkpoint += len(chunk)
            do_checkpoint = (
                bool(self.checkpoint_every)
                and self._events_since_checkpoint >= self.checkpoint_every
            )
            if do_checkpoint:
                self._events_since_checkpoint = 0
        for fam in sorted(touched):
            self._scheduler.submit(
                fam, self._family_job, fam, marks[fam], ctx, queued_perf
            )
        if do_checkpoint:
            self._scheduler.submit(None, self._guard, self._checkpoint_job)

    def result_of(self, task_id: int) -> int | None:
        """Block until ``task_id`` has an outcome; the worker id or None."""
        task_id = int(task_id)
        with self._wake:
            self._wake.wait_for(
                lambda: task_id in self._results or self._failure is not None,
                timeout=self.liveness_timeout,
            )
            if task_id in self._results:
                return self._results[task_id]
            self._check_failure_locked()
        raise MeshError(f"timed out waiting for the result of task {task_id}")

    def flush(self) -> None:
        """Deliver everything journaled so far and flush every cohort."""
        self.start()
        self._await(
            self._scheduler.submit(None, self._guard, self._flush_job),
            "flush barrier",
        )

    def checkpoint(self) -> None:
        """Force a snapshot barrier now (periodic ones ride dispatch)."""
        self.start()
        self._await(
            self._scheduler.submit(None, self._guard, self._checkpoint_job),
            "checkpoint barrier",
        )

    def report(
        self, wall_seconds: float = float("nan"), *, flush: bool = True
    ) -> ServiceReport:
        """Merge every peer's shard metrics into one service report."""
        self.start()
        merged = self._await(
            self._scheduler.submit(None, self._guard, self._report_job, flush),
            "report barrier",
        )
        keys = sorted(merged, key=key_order)
        latencies = [v for k in keys for v in merged[k]["latencies_s"]]
        return build_report(
            (ShardSnapshot(**merged[k]["snapshot"]) for k in keys),
            latencies,
            (),
            wall_seconds=wall_seconds,
            sim_duration=self.now,
            distance_stats=(
                sum(merged[k]["distance_total"] for k in keys),
                sum(merged[k]["distance_count"] for k in keys),
            ),
        )

    def run(self, events) -> ServiceReport:
        """Process a stream and return the timed service report."""
        self.start()
        t0 = time.perf_counter()
        self.process(events)
        self.flush()
        wall = time.perf_counter() - t0
        return self.report(wall_seconds=wall, flush=False)

    # ------------------------------------------------------------------ #
    # dispatch jobs                                                       #
    # ------------------------------------------------------------------ #

    def _family_job(
        self, fam: int, upto: int, ctx=None, queued_perf: float = 0.0
    ) -> None:
        """Deliver one family's journal up to ``upto``, surviving failover."""
        while True:
            with self._state:
                if self._failure is not None or self._closed:
                    return
                peer = self._peers[self.ownership[fam]]
            try:
                self._deliver(fam, peer, upto, ctx, queued_perf)
                return
            except PeerLost as lost:
                try:
                    self._handle_peer_loss(lost.peer)
                except Exception as exc:
                    self._fail(exc)
                    return
            except Exception as exc:
                self._fail(exc)
                return

    def _deliver(
        self,
        fam: int,
        peer: MeshPeer,
        upto: int,
        ctx=None,
        queued_perf: float = 0.0,
    ) -> None:
        if peer.dead:
            raise PeerLost(peer.name)
        self._ensure_configured(peer)
        self._ensure_installed(fam, peer)
        with self._state:
            ops = self._journal.take(fam, upto)
        if not ops:
            return
        body = {"ops": ops}
        if self.tracer is not None and ctx is not None:
            # the dispatch span crosses the socket: its context rides the
            # events body (trace-unaware workers ignore the key) and the
            # worker hands its execute span back in the reply
            attrs = {"family": fam, "peer": peer.name, "n_ops": len(ops)}
            if queued_perf:
                attrs["queue_wait_s"] = time.perf_counter() - queued_perf
            with self.tracer.span(
                "mesh.dispatch", parent=ctx, attrs=attrs
            ) as span:
                body["trace"] = span.context.to_dict()
                reply = peer.call("events", body)
        else:
            reply = peer.call("events", body)
        if self.tracer is not None:
            spans = reply.get("spans")
            if isinstance(spans, list):
                for record in spans:
                    self.tracer.adopt(record)
        results = reply.get("results")
        if not isinstance(results, list):
            raise MeshError(f"malformed events reply from {peer.name!r}")
        with self._wake:
            for row in results:
                tid, wid = int(row[0]), row[1]
                # first write wins: replayed duplicates deduplicate
                self._results.setdefault(tid, None if wid is None else int(wid))
            self._wake.notify_all()

    def _ensure_configured(self, peer: MeshPeer) -> None:
        with peer.config_lock:
            if peer.configured:
                return
            peer.call("configure", {"batch_size": self.batch_size})
            peer.configured = True

    def _ensure_installed(self, fam: int, peer: MeshPeer) -> None:
        """Create or restore a family's shards on their (new) owner."""
        with self._state:
            if self._installed.get(fam) and self.ownership[fam] == peer.name:
                return
            plan = [
                (key, list(self._checkpoints[key]))
                if key in self._checkpoints
                else (key, None)
                for key in self.router.family_keys(fam)
            ]
        for key, chain in plan:
            if chain is not None:
                peer.call(
                    "load", {"key": key, "snapshots": chain}, packed=True
                )
            else:
                peer.call("create", {"key": key, "spec": self._specs[key]})
        with self._state:
            if self.ownership[fam] == peer.name and not peer.dead:
                self._installed[fam] = True

    # ------------------------------------------------------------------ #
    # barriers                                                            #
    # ------------------------------------------------------------------ #

    def _settle(self, marks: dict[int, int]) -> None:
        """Deliver every family's journal up to its mark (barrier prelude)."""
        for fam in sorted(marks):
            with self._state:
                peer = self._peers[self.ownership[fam]]
            self._deliver(fam, peer, marks[fam])

    def _flush_job(self) -> None:
        with self._state:
            marks = self._journal.ends()
        while True:
            self._check_failure()
            try:
                self._settle(marks)
                # post-settle every family owner is configured; a peer
                # still unconfigured owns nothing and has nothing to flush
                for peer in self._alive_peers():
                    if peer.configured:
                        peer.call("flush", {})
                return
            except PeerLost as lost:
                self._handle_peer_loss(lost.peer)

    def _checkpoint_reqs(self) -> dict[str, dict]:  # guarded-by: _state
        """Per-key snapshot request bodies for one barrier attempt.

        The caller holds ``_state`` (ids are drawn from ``_ckpt_seq``).
        A key with a bounded chain gets a delta request against its tip;
        a key past ``rebase_every`` (or with no chain yet) gets a base.
        Each retry attempt draws *fresh* checkpoint ids — a worker that
        already answered the aborted attempt keeps its parent cursor, so
        re-asking the same parent with a new id is always answerable.
        """
        reqs: dict[str, dict] = {}
        for key in self.router.keys():
            self._ckpt_seq += 1
            chain = self._checkpoints.get(key)
            if chain and len(chain) <= self.rebase_every:
                reqs[key] = {
                    "mode": "delta",
                    "checkpoint": self._ckpt_seq,
                    "parent": chain[-1]["checkpoint"],
                }
            else:
                reqs[key] = {"mode": "base", "checkpoint": self._ckpt_seq}
        return reqs

    def _absorb_snapshot(self, key: str, doc: dict) -> None:  # guarded-by: _state
        """Chain one barrier reply; the caller holds ``_state``.

        A delta appends to the chain (its parent must equal the tip — a
        mismatch means lineage diverged and restoring would be silently
        wrong, so fail loud); a base rebases the chain to itself. The
        worker may answer a delta request with a base (e.g. it lost the
        parent cursor); that is just an early rebase.
        """
        size = float(len(json.dumps(doc, separators=(",", ":"))))
        chain = self._checkpoints.get(key)
        if doc.get("kind") == "delta":
            if not chain or chain[-1].get("checkpoint") != doc.get("parent"):
                raise MeshError(
                    f"checkpoint lineage diverged for shard {key!r}"
                )
            chain.append(doc)
            self._delta_bytes.record(size)
        else:
            if chain is not None:
                self.registry.counter("mesh.checkpoint.rebase_total")
            self._checkpoints[key] = [doc]
            self._snapshot_bytes.record(size)

    def _checkpoint_job(self) -> None:
        t0 = time.perf_counter()
        with self._state:
            marks = self._journal.ends()
        while True:
            self._check_failure()
            snaps: dict[str, dict] = {}
            try:
                self._settle(marks)
                with self._state:
                    reqs = self._checkpoint_reqs()
                for key in self.router.keys():
                    with self._state:
                        peer = self._peers[self.ownership[family_of(key)]]
                    reply = peer.call("snapshot", {"key": key, **reqs[key]})
                    snap = reply.get("snapshot")
                    if not isinstance(snap, dict):
                        raise MeshError(
                            f"malformed snapshot reply from {peer.name!r}"
                        )
                    snaps[key] = snap
                    hook = self._test_mid_checkpoint
                    if hook is not None:
                        hook(key)
                break
            except PeerLost as lost:
                # fall back to the previous checkpoint plus the journal:
                # nothing was committed, the retry re-settles and
                # re-snapshots every shard from a consistent state
                self._handle_peer_loss(lost.peer)
        with self._state:
            for key, snap in snaps.items():
                self._absorb_snapshot(key, snap)
            stats = self._journal.compact(marks)
        self.registry.counter(
            "mesh.journal.compacted_ops", stats["dropped"]
        )
        self._checkpoint_s.record(time.perf_counter() - t0)

    def _report_job(self, flush: bool) -> dict[str, dict]:
        with self._state:
            marks = self._journal.ends()
        while True:
            self._check_failure()
            try:
                self._settle(marks)
                # unconfigured peers own no families (see _flush_job)
                peers = [p for p in self._alive_peers() if p.configured]
                if flush:
                    for peer in peers:
                        peer.call("flush", {})
                merged: dict[str, dict] = {}
                for peer in peers:
                    reply = peer.call("report", {})
                    rows = reply.get("report")
                    if not isinstance(rows, dict):
                        raise MeshError(
                            f"malformed report reply from {peer.name!r}"
                        )
                    merged.update(rows)
                return merged
            except PeerLost as lost:
                self._handle_peer_loss(lost.peer)

    # ------------------------------------------------------------------ #
    # failover                                                            #
    # ------------------------------------------------------------------ #

    def _handle_peer_loss(self, name: str) -> None:
        """Reassign a dead peer's families; idempotent per peer.

        Each family goes to the surviving peer with the fewest families
        (ties break by join order), gets flagged for reinstall from its
        last checkpoint, and has its journal cursor rewound — the next
        delivery replays everything since that checkpoint. Raises
        :class:`MeshError` when no peer survives.
        """
        hook = None
        with self._state:
            peer = self._peers.get(name)
            if peer is not None:
                # under the *peer's* lock, not just _state: call() checks
                # dead under peer._lock and must not race this flip
                peer.mark_dead()
            if name in self._alive:
                self._alive.discard(name)
                self.failovers += 1
                survivors = [n for n in self._join_order if n in self._alive]
                if not survivors:
                    raise MeshError(
                        "every mesh worker is gone; nothing to fail over to"
                    )
                load = {s: 0 for s in survivors}
                for owner in self.ownership.values():
                    if owner in load:
                        load[owner] += 1
                rank = {n: i for i, n in enumerate(self._join_order)}
                for fam in sorted(
                    f for f, o in self.ownership.items() if o == name
                ):
                    dst = min(survivors, key=lambda s: (load[s], rank[s]))
                    load[dst] += 1
                    self.ownership[fam] = dst
                    self._installed[fam] = False
                    self._journal.rewind(fam)
                hook = self._test_on_failover
            elif not self._alive:
                raise MeshError(
                    "every mesh worker is gone; nothing to fail over to"
                )
            self._wake.notify_all()
        if peer is not None:
            peer.abandon()
        if hook is not None:
            hook(name)

    # ------------------------------------------------------------------ #
    # plumbing                                                            #
    # ------------------------------------------------------------------ #

    def _alive_peers(self) -> list[MeshPeer]:
        with self._state:
            return [self._peers[n] for n in self._join_order if n in self._alive]

    def _guard(self, fn, *args):
        """Barrier wrapper: a failed barrier poisons the coordinator."""
        try:
            return fn(*args)
        except Exception as exc:
            self._fail(exc)
            raise

    def _fail(self, exc: BaseException) -> None:
        with self._wake:
            if self._failure is None and not self._closed:
                self._failure = exc
            self._wake.notify_all()

    def _check_failure(self) -> None:
        with self._state:
            self._check_failure_locked()

    def _check_failure_locked(self) -> None:
        if self._failure is not None:
            raise MeshError("the mesh has failed") from self._failure
        if self._closed:
            raise MeshError("the mesh coordinator is closed")

    def _await(self, fut: Future, what: str):
        try:
            return fut.result(timeout=self.liveness_timeout)
        except FutureTimeout:
            raise MeshError(f"timed out waiting for {what}") from None

    # ------------------------------------------------------------------ #
    # telemetry                                                           #
    # ------------------------------------------------------------------ #

    def telemetry(self) -> dict:
        """Coordinator health as one JSON-ready dict.

        Per-peer dispatch depth (outstanding ops sampled at every send),
        checkpoint snapshot sizes and wall-times from the reservoirs,
        plus the scheduler's live per-family queue depths.
        """
        with self._state:
            peers = {}
            for name in self._join_order:
                peer = self._peers[name]
                peers[name] = {
                    "label": peer.label,
                    "alive": name in self._alive,
                    "families": sorted(
                        f for f, o in self.ownership.items() if o == name
                    ),
                    "calls": peer.calls,
                    "dispatch_depth": summarize_reservoir(peer.depth),
                }
            return {
                "address": list(self.address) if self.address else None,
                "failovers": self.failovers,
                "rejected_handshakes": self.rejected_handshakes,
                "peers": peers,
                "snapshot_bytes": summarize_reservoir(self._snapshot_bytes),
                "checkpoint_seconds": summarize_reservoir(self._checkpoint_s),
                "scheduler": {
                    "submitted": self._scheduler.submitted,
                    "barriers": self._scheduler.barriers,
                    "key_depths": {
                        str(k): v
                        for k, v in self._scheduler.key_depths().items()
                    },
                },
            }
