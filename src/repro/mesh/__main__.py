"""Mesh CLI: run one worker, or the coordinator smoke gate.

``--worker`` is the deployment entry point — a standalone process that
knows its coordinator only by address::

    python -m repro.mesh --worker --connect 127.0.0.1:7700 --name w0

``--smoke`` is the CI gate: it stands up a coordinator plus two loopback
CLI workers (real ``python -m repro.mesh --worker`` processes, real
sockets), replays the conformance stream, and asserts bit-identical
assignments and reports against the single-process sharded engine —
once with both peers on the default bin1 wire and once with the peers
split across bin1 and json frames — then repeats the run with a worker
SIGKILLed mid-stream on that same mixed-codec mesh and asserts the
failover changed nothing::

    python -m repro.mesh --smoke
"""

from __future__ import annotations

import argparse
import sys


def _parse_address(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--connect wants HOST:PORT, got {text!r}")
    return host, int(port)


def _run_smoke(args) -> int:
    from ..api import ServiceSpec, make_backend
    from ..api.conformance import (
        build_conformance_stream,
        check_parity,
        run_backend,
        run_mesh_failover,
    )
    from ..geometry import Box

    spec = ServiceSpec(
        region=Box.square(200.0),
        shards=(2, 2),
        grid_nx=10,
        epsilon=0.5,
        budget_capacity=2.0,
        batch_size=64,
        seed=args.seed,
    )
    requests = build_conformance_stream(
        spec.region, n_workers=60, n_tasks=45, seed=7
    )
    reference = run_backend(make_backend("sharded", spec), requests, window=16)

    mesh = run_backend(
        make_backend(
            "mesh",
            spec,
            n_peers=2,
            spawn="cli",
            chunk_size=17,
            checkpoint_every=48,
        ),
        requests,
        window=16,
    )
    problems = check_parity([reference, mesh])
    print(
        f"[repro.mesh smoke] parity sharded vs mesh(cli,2 peers): "
        f"{len(reference.assignments)} assignments, "
        f"{'OK' if not problems else 'FAILED'}",
        file=sys.stderr,
    )
    for problem in problems:
        print(f"  - {problem}", file=sys.stderr)

    # mixed-codec leg: one peer frames bin1, the other json — the codec
    # each worker negotiated must be invisible in the answers
    mixed = run_backend(
        make_backend(
            "mesh",
            spec,
            n_peers=2,
            spawn="cli",
            chunk_size=17,
            checkpoint_every=48,
            worker_codecs=("bin1", "json"),
        ),
        requests,
        window=16,
    )
    mixed_problems = check_parity([reference, mixed])
    print(
        f"[repro.mesh smoke] mixed-codec leg (bin1+json peers): "
        f"{'OK' if not mixed_problems else 'FAILED'}",
        file=sys.stderr,
    )
    for problem in mixed_problems:
        print(f"  - {problem}", file=sys.stderr)

    trace_problems: list[str] = []
    if args.trace:
        trace_problems = _run_traced_leg(spec, requests, reference, args.trace)

    failed, failovers = run_mesh_failover(
        spec,
        requests,
        n_peers=2,
        spawn="cli",
        chunk_size=17,
        checkpoint_every=48,
        window=16,
        worker_codecs=("bin1", "json"),
    )
    fail_problems = check_parity([reference, failed])
    if failovers < 1:
        fail_problems.append("killed worker was never detected (failovers == 0)")
    print(
        f"[repro.mesh smoke] failover leg: {failovers} failover(s), "
        f"{'OK' if not fail_problems else 'FAILED'}",
        file=sys.stderr,
    )
    for problem in fail_problems:
        print(f"  - {problem}", file=sys.stderr)

    delta_problems: list[str] = []
    if args.delta_failover:
        # delta-failover leg: checkpoint often enough that the kill
        # lands mid-chain — recovery must restore shards by composing a
        # base plus deltas (asserted via the chain telemetry), and the
        # answers must still be bit-identical to the serial engine
        stats: dict = {}
        delta_run, delta_failovers = run_mesh_failover(
            spec,
            requests,
            n_peers=2,
            spawn="cli",
            chunk_size=17,
            checkpoint_every=24,
            rebase_every=8,
            kill_after=(len(requests) * 3) // 4,
            window=16,
            worker_codecs=("bin1", "json"),
            stats=stats,
        )
        delta_problems = check_parity([reference, delta_run])
        if delta_failovers < 1:
            delta_problems.append(
                "killed worker was never detected (failovers == 0)"
            )
        if stats.get("delta_checkpoints", 0) < 1:
            delta_problems.append(
                "no delta checkpoint was ever taken — the leg never "
                f"exercised chain restore (stats: {stats})"
            )
        print(
            f"[repro.mesh smoke] delta-failover leg: "
            f"{delta_failovers} failover(s), "
            f"{stats.get('delta_checkpoints', 0)} delta / "
            f"{stats.get('base_checkpoints', 0)} base checkpoints, "
            f"max chain {stats.get('max_chain_len', 0)}, "
            f"{stats.get('compacted_ops', 0)} journal ops compacted, "
            f"{'OK' if not delta_problems else 'FAILED'}",
            file=sys.stderr,
        )
        for problem in delta_problems:
            print(f"  - {problem}", file=sys.stderr)

    if (
        problems
        or mixed_problems
        or trace_problems
        or fail_problems
        or delta_problems
    ):
        print("[repro.mesh smoke] FAILED", file=sys.stderr)
        return 1
    print("[repro.mesh smoke] OK", file=sys.stderr)
    return 0


def _run_traced_leg(spec, requests, reference, trace_path: str) -> list[str]:
    """Traced leg: client → gateway → mesh with one shared tracer.

    Replays the same stream through a real loopback gateway over a mesh
    backend with tracing negotiated end to end, then asserts (a) the
    assignments are still bit-identical to the sharded reference and
    (b) the JSONL sink holds at least one complete cross-process trace
    — a ``client.request`` span that is an ancestor of a
    ``worker.execute`` span — and renders the file's summary.
    """
    from ..api import make_backend
    from ..api.conformance import check_parity, run_backend
    from ..gateway import GatewayConfig, GatewayServer, RemoteBackend, serve_gateway
    from ..obs import JsonlSink, Tracer, has_cross_process_trace, load_records
    from ..obs.summary import summarize

    problems: list[str] = []
    sink = JsonlSink(trace_path)
    tracer = Tracer(sink, service="mesh-smoke")
    try:
        backend = make_backend(
            "mesh",
            spec,
            n_peers=2,
            spawn="cli",
            chunk_size=17,
            checkpoint_every=48,
            tracer=tracer,
        )
        config = GatewayConfig(spec, backend="mesh", trace=True)
        server = GatewayServer(config, backend=backend, tracer=tracer)
        with serve_gateway(server=server):
            remote = RemoteBackend(spec, address=server.address)
            traced = run_backend(remote, requests, window=16, tracer=tracer)
        problems += check_parity([reference, traced])
    finally:
        tracer.flush()
        sink.close()

    spans = [r for r in load_records(trace_path) if r.get("type") == "span"]
    if not has_cross_process_trace(spans):
        problems.append(
            "trace file holds no complete client→worker trace "
            f"({len(spans)} spans in {trace_path})"
        )
    print(
        f"[repro.mesh smoke] traced leg: {len(spans)} spans -> {trace_path}, "
        f"{'OK' if not problems else 'FAILED'}",
        file=sys.stderr,
    )
    for problem in problems:
        print(f"  - {problem}", file=sys.stderr)
    if not problems:
        print(summarize(trace_path, slowest=1), file=sys.stderr)
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mesh",
        description=(
            "Multi-host worker mesh: run one worker process against a "
            "coordinator, or the CI smoke gate."
        ),
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--worker",
        action="store_true",
        help="run one mesh worker process (requires --connect)",
    )
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="coordinator + 2 loopback CLI workers, parity + failover gate",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="coordinator address for --worker",
    )
    parser.add_argument(
        "--name", default="mesh-worker", help="worker name for --worker"
    )
    parser.add_argument(
        "--codec",
        default="bin1",
        help=(
            "wire codec to offer the coordinator for --worker "
            "('bin1' or 'json'; the coordinator's grant decides)"
        ),
    )
    parser.add_argument(
        "--connect-window",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial TCP connect",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--delta-failover",
        action="store_true",
        help=(
            "with --smoke: add a SIGKILL-mid-chain leg with frequent "
            "checkpoints; recovery must compose base+delta chains and "
            "stay bit-identical"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "with --smoke: add a traced leg (client → gateway → mesh with "
            "distributed tracing on), write spans to PATH (JSONL), and "
            "assert a complete cross-process trace landed"
        ),
    )
    args = parser.parse_args(argv)

    if args.worker:
        if not args.connect:
            parser.error("--worker requires --connect HOST:PORT")
        try:
            address = _parse_address(args.connect)
        except ValueError as exc:
            parser.error(str(exc))
        from .worker import run_worker

        run_worker(
            address,
            name=args.name,
            codec=args.codec,
            connect_window_s=args.connect_window,
        )
        return 0

    return _run_smoke(args)


if __name__ == "__main__":
    raise SystemExit(main())
