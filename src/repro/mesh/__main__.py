"""Mesh CLI: run one worker, or the coordinator smoke gate.

``--worker`` is the deployment entry point — a standalone process that
knows its coordinator only by address::

    python -m repro.mesh --worker --connect 127.0.0.1:7700 --name w0

``--smoke`` is the CI gate: it stands up a coordinator plus two loopback
CLI workers (real ``python -m repro.mesh --worker`` processes, real
sockets), replays the conformance stream, and asserts bit-identical
assignments and reports against the single-process sharded engine —
then repeats the run with a worker SIGKILLed mid-stream and asserts the
failover changed nothing::

    python -m repro.mesh --smoke
"""

from __future__ import annotations

import argparse
import sys


def _parse_address(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--connect wants HOST:PORT, got {text!r}")
    return host, int(port)


def _run_smoke(args) -> int:
    from ..api import ServiceSpec, make_backend
    from ..api.conformance import (
        build_conformance_stream,
        check_parity,
        run_backend,
        run_mesh_failover,
    )
    from ..geometry import Box

    spec = ServiceSpec(
        region=Box.square(200.0),
        shards=(2, 2),
        grid_nx=10,
        epsilon=0.5,
        budget_capacity=2.0,
        batch_size=64,
        seed=args.seed,
    )
    requests = build_conformance_stream(
        spec.region, n_workers=60, n_tasks=45, seed=7
    )
    reference = run_backend(make_backend("sharded", spec), requests, window=16)

    mesh = run_backend(
        make_backend(
            "mesh",
            spec,
            n_peers=2,
            spawn="cli",
            chunk_size=17,
            checkpoint_every=48,
        ),
        requests,
        window=16,
    )
    problems = check_parity([reference, mesh])
    print(
        f"[repro.mesh smoke] parity sharded vs mesh(cli,2 peers): "
        f"{len(reference.assignments)} assignments, "
        f"{'OK' if not problems else 'FAILED'}",
        file=sys.stderr,
    )
    for problem in problems:
        print(f"  - {problem}", file=sys.stderr)

    failed, failovers = run_mesh_failover(
        spec,
        requests,
        n_peers=2,
        spawn="cli",
        chunk_size=17,
        checkpoint_every=48,
        window=16,
    )
    fail_problems = check_parity([reference, failed])
    if failovers < 1:
        fail_problems.append("killed worker was never detected (failovers == 0)")
    print(
        f"[repro.mesh smoke] failover leg: {failovers} failover(s), "
        f"{'OK' if not fail_problems else 'FAILED'}",
        file=sys.stderr,
    )
    for problem in fail_problems:
        print(f"  - {problem}", file=sys.stderr)

    if problems or fail_problems:
        print("[repro.mesh smoke] FAILED", file=sys.stderr)
        return 1
    print("[repro.mesh smoke] OK", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mesh",
        description=(
            "Multi-host worker mesh: run one worker process against a "
            "coordinator, or the CI smoke gate."
        ),
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--worker",
        action="store_true",
        help="run one mesh worker process (requires --connect)",
    )
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="coordinator + 2 loopback CLI workers, parity + failover gate",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="coordinator address for --worker",
    )
    parser.add_argument(
        "--name", default="mesh-worker", help="worker name for --worker"
    )
    parser.add_argument(
        "--connect-window",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial TCP connect",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.worker:
        if not args.connect:
            parser.error("--worker requires --connect HOST:PORT")
        try:
            address = _parse_address(args.connect)
        except ValueError as exc:
            parser.error(str(exc))
        from .worker import run_worker

        run_worker(
            address, name=args.name, connect_window_s=args.connect_window
        )
        return 0

    return _run_smoke(args)


if __name__ == "__main__":
    raise SystemExit(main())
