"""Predefined point sets and nearest-point snapping.

The server in the paper constructs the HST over a *predefined* set of N
points published ahead of time (Sec. III-B): workers and tasks snap their
true location to the nearest predefined point before obfuscation. This
module provides the canonical uniform-grid point set used throughout the
reproduction plus a KD-tree snap index.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .box import Box
from .points import as_point, as_points

__all__ = ["uniform_grid", "SnapIndex"]


def uniform_grid(box: Box, nx: int, ny: int | None = None) -> np.ndarray:
    """``nx * ny`` points forming a uniform lattice over ``box``.

    Points are placed at cell centers so the maximum snap displacement is
    half a cell diagonal. ``ny`` defaults to ``nx``. The returned array is
    ordered row-major (y outer, x inner) and is deterministic, making it a
    stable choice for the published predefined point set.
    """
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
    xs = box.xmin + (np.arange(nx) + 0.5) * (box.width / nx)
    ys = box.ymin + (np.arange(ny) + 0.5) * (box.height / ny)
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


class SnapIndex:
    """Nearest-predefined-point lookup backed by a KD-tree.

    This is the client-side "map location to an HST leaf" step: the index
    is built once from the published point set and then answers
    nearest-neighbour queries in O(log N).

    When the point set is recognised as a row-major uniform lattice (the
    shape every :func:`uniform_grid` announcement has), queries skip the
    KD-tree entirely: nearest-on-a-lattice separates per axis, so a snap
    is two subtract-scale-round operations and a clip — O(1), and an
    order of magnitude cheaper per single-event query. Arbitrary point
    sets keep the KD-tree path; both paths return the nearest point's
    index (ties on exact cell midlines may break differently between the
    two, which is why the lattice path, once detected, serves *all*
    queries for that index).
    """

    def __init__(self, points) -> None:
        pts = as_points(points)
        if len(pts) == 0:
            raise ValueError("snap index needs at least one predefined point")
        self._points = pts
        self._tree = cKDTree(pts)
        self._lattice = _detect_lattice(pts)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> np.ndarray:
        """The predefined point set (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    def snap(self, location) -> int:
        """Index of the predefined point nearest to ``location``."""
        if self._lattice is not None:
            x0, y0, inv_dx, inv_dy, nx, ny = self._lattice
            x, y = float(location[0]), float(location[1])
            ix = int((x - x0) * inv_dx + 0.5)
            iy = int((y - y0) * inv_dy + 0.5)
            if ix < 0:
                ix = 0
            elif ix >= nx:
                ix = nx - 1
            if iy < 0:
                iy = 0
            elif iy >= ny:
                iy = ny - 1
            return iy * nx + ix
        _, idx = self._tree.query(as_point(location))
        return int(idx)

    def snap_many(self, locations) -> np.ndarray:
        """Vectorized :meth:`snap` for an ``(n, 2)`` array of locations."""
        locs = as_points(locations)
        if len(locs) == 0:
            return np.empty(0, dtype=np.intp)
        if self._lattice is not None:
            x0, y0, inv_dx, inv_dy, nx, ny = self._lattice
            ix = np.floor((locs[:, 0] - x0) * inv_dx + 0.5).astype(np.intp)
            iy = np.floor((locs[:, 1] - y0) * inv_dy + 0.5).astype(np.intp)
            np.clip(ix, 0, nx - 1, out=ix)
            np.clip(iy, 0, ny - 1, out=iy)
            return iy * nx + ix
        _, idx = self._tree.query(locs)
        return np.asarray(idx, dtype=np.intp)

    def point(self, index: int) -> np.ndarray:
        """Coordinates of predefined point ``index``."""
        return self._points[index].copy()


def _detect_lattice(pts: np.ndarray):
    """Recognise a row-major uniform lattice in a point set.

    Returns ``(x0, y0, 1/dx, 1/dy, nx, ny)`` when ``pts`` is exactly the
    meshgrid layout :func:`uniform_grid` produces (y outer, x inner, even
    spacing on both axes), else ``None``. The check reconstructs the
    candidate lattice and compares bit-for-bit, so a false positive would
    require two different point sets with identical coordinates.
    """
    n = len(pts)
    if n == 1:
        return (float(pts[0, 0]), float(pts[0, 1]), 1.0, 1.0, 1, 1)
    xs = np.unique(pts[:, 0])
    ys = np.unique(pts[:, 1])
    nx, ny = len(xs), len(ys)
    if nx * ny != n:
        return None
    dx = (xs[-1] - xs[0]) / (nx - 1) if nx > 1 else 1.0
    dy = (ys[-1] - ys[0]) / (ny - 1) if ny > 1 else 1.0
    if dx <= 0 or dy <= 0:
        return None
    gx, gy = np.meshgrid(xs, ys)
    if not (
        np.array_equal(pts[:, 0], gx.ravel())
        and np.array_equal(pts[:, 1], gy.ravel())
        and np.allclose(np.diff(xs), dx, rtol=1e-9, atol=0.0)
        and np.allclose(np.diff(ys), dy, rtol=1e-9, atol=0.0)
    ):
        return None
    return (float(xs[0]), float(ys[0]), 1.0 / float(dx), 1.0 / float(dy), nx, ny)
