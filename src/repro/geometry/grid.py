"""Predefined point sets and nearest-point snapping.

The server in the paper constructs the HST over a *predefined* set of N
points published ahead of time (Sec. III-B): workers and tasks snap their
true location to the nearest predefined point before obfuscation. This
module provides the canonical uniform-grid point set used throughout the
reproduction plus a KD-tree snap index.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .box import Box
from .points import as_point, as_points

__all__ = ["uniform_grid", "SnapIndex"]


def uniform_grid(box: Box, nx: int, ny: int | None = None) -> np.ndarray:
    """``nx * ny`` points forming a uniform lattice over ``box``.

    Points are placed at cell centers so the maximum snap displacement is
    half a cell diagonal. ``ny`` defaults to ``nx``. The returned array is
    ordered row-major (y outer, x inner) and is deterministic, making it a
    stable choice for the published predefined point set.
    """
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
    xs = box.xmin + (np.arange(nx) + 0.5) * (box.width / nx)
    ys = box.ymin + (np.arange(ny) + 0.5) * (box.height / ny)
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


class SnapIndex:
    """Nearest-predefined-point lookup backed by a KD-tree.

    This is the client-side "map location to an HST leaf" step: the index
    is built once from the published point set and then answers
    nearest-neighbour queries in O(log N).
    """

    def __init__(self, points) -> None:
        pts = as_points(points)
        if len(pts) == 0:
            raise ValueError("snap index needs at least one predefined point")
        self._points = pts
        self._tree = cKDTree(pts)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> np.ndarray:
        """The predefined point set (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    def snap(self, location) -> int:
        """Index of the predefined point nearest to ``location``."""
        _, idx = self._tree.query(as_point(location))
        return int(idx)

    def snap_many(self, locations) -> np.ndarray:
        """Vectorized :meth:`snap` for an ``(n, 2)`` array of locations."""
        locs = as_points(locations)
        if len(locs) == 0:
            return np.empty(0, dtype=np.intp)
        _, idx = self._tree.query(locs)
        return np.asarray(idx, dtype=np.intp)

    def point(self, index: int) -> np.ndarray:
        """Coordinates of predefined point ``index``."""
        return self._points[index].copy()
