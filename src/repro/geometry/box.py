"""Axis-aligned bounding boxes for workload regions.

The paper's synthetic experiments live in a 200x200 Euclidean space and the
real-data experiments in a 10 km x 10 km region of Chengdu; both are modeled
as a :class:`Box`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import ensure_rng
from .points import as_points

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """Closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmin <= self.xmax and self.ymin <= self.ymax):
            raise ValueError(f"degenerate box: {self}")

    @classmethod
    def square(cls, side: float, origin: tuple[float, float] = (0.0, 0.0)) -> "Box":
        """Square of the given side with its lower-left corner at ``origin``."""
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        ox, oy = origin
        return cls(ox, oy, ox + side, oy + side)

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def center(self) -> np.ndarray:
        return np.array(
            [(self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0]
        )

    @property
    def diagonal(self) -> float:
        return float(np.hypot(self.width, self.height))

    def contains(self, points) -> np.ndarray:
        """Boolean mask of which rows of ``points`` lie inside the box."""
        pts = as_points(points)
        return (
            (pts[:, 0] >= self.xmin)
            & (pts[:, 0] <= self.xmax)
            & (pts[:, 1] >= self.ymin)
            & (pts[:, 1] <= self.ymax)
        )

    def clamp(self, points) -> np.ndarray:
        """Project points onto the box (used to keep noisy locations in-region).

        The planar Laplace mechanism can push an obfuscated location outside
        the service region; like prior work we remap it to the nearest point
        of the region, which preserves Geo-I (post-processing).
        """
        pts = as_points(points).copy()
        np.clip(pts[:, 0], self.xmin, self.xmax, out=pts[:, 0])
        np.clip(pts[:, 1], self.ymin, self.ymax, out=pts[:, 1])
        return pts

    def sample_uniform(self, n: int, seed=None) -> np.ndarray:
        """Draw ``n`` i.i.d. uniform points inside the box."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = ensure_rng(seed)
        xs = rng.uniform(self.xmin, self.xmax, size=n)
        ys = rng.uniform(self.ymin, self.ymax, size=n)
        return np.column_stack([xs, ys])
