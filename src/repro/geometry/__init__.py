"""Geometry substrate: points, regions and predefined-point snapping."""

from .box import Box
from .grid import SnapIndex, uniform_grid
from .points import (
    as_point,
    as_points,
    diameter,
    distances_to,
    euclidean,
    pairwise_distances,
    total_pair_distance,
)

__all__ = [
    "Box",
    "SnapIndex",
    "uniform_grid",
    "as_point",
    "as_points",
    "diameter",
    "distances_to",
    "euclidean",
    "pairwise_distances",
    "total_pair_distance",
]
