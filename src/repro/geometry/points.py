"""Planar point sets and Euclidean distance helpers.

All public functions operate on ``float64`` arrays of shape ``(n, 2)``
(one row per point) or shape ``(2,)`` for a single point. :func:`as_points`
is the single validation/normalization entry point used across the library,
so every other module can assume well-formed input.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_point",
    "as_points",
    "euclidean",
    "distances_to",
    "pairwise_distances",
    "diameter",
    "total_pair_distance",
]


def as_point(p) -> np.ndarray:
    """Validate and return ``p`` as a float64 array of shape ``(2,)``."""
    arr = np.asarray(p, dtype=np.float64)
    if arr.shape != (2,):
        raise ValueError(f"expected a single 2-D point, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"point has non-finite coordinates: {arr}")
    return arr


def as_points(points) -> np.ndarray:
    """Validate and return ``points`` as a float64 array of shape ``(n, 2)``.

    A single point of shape ``(2,)`` is promoted to shape ``(1, 2)``.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        if arr.shape == (2,):
            arr = arr.reshape(1, 2)
        elif arr.size == 0:
            arr = arr.reshape(0, 2)
        else:
            raise ValueError(f"expected (n, 2) points, got shape {arr.shape}")
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError("point set contains non-finite coordinates")
    return arr


def euclidean(a, b) -> float:
    """Euclidean distance between two points."""
    return float(np.hypot(*(as_point(a) - as_point(b))))


def distances_to(points, q) -> np.ndarray:
    """Vector of Euclidean distances from every row of ``points`` to ``q``."""
    pts = as_points(points)
    diff = pts - as_point(q)
    return np.hypot(diff[:, 0], diff[:, 1])


def pairwise_distances(points) -> np.ndarray:
    """Dense ``(n, n)`` Euclidean distance matrix.

    Intended for the *predefined* point set of an HST (hundreds to a few
    thousand points), not for full workloads.
    """
    pts = as_points(points)
    diff = pts[:, None, :] - pts[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


def diameter(points) -> float:
    """Maximum pairwise distance of the point set (0.0 for n < 2).

    Computed exactly via the convex hull observation: the diameter of a
    finite planar set is attained between hull vertices. Falls back to the
    brute-force matrix for tiny or degenerate (collinear) sets.
    """
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        return 0.0
    if n > 64:
        try:
            from scipy.spatial import ConvexHull

            hull = pts[ConvexHull(pts).vertices]
            return float(pairwise_distances(hull).max())
        except Exception:  # degenerate input (collinear points): brute force
            pass
    return float(pairwise_distances(pts).max())


def total_pair_distance(left, right) -> float:
    """Sum of row-wise Euclidean distances between two aligned point sets.

    This is the paper's ``total distance`` objective evaluated on matched
    (task, worker) coordinate pairs.
    """
    a = as_points(left)
    b = as_points(right)
    if a.shape != b.shape:
        raise ValueError(f"mismatched pair sets: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.hypot(diff[:, 0], diff[:, 1]).sum())
