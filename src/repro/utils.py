"""Small shared utilities: RNG handling, timing and memory probes.

Everything in this repository that consumes randomness accepts a ``seed``
argument which may be ``None`` (fresh entropy), an ``int`` (reproducible),
or an already-constructed :class:`numpy.random.Generator` (shared stream).
:func:`ensure_rng` normalizes all three cases.

**The "keyed" seeding convention.** Distributed pieces of one logical
service must not derive their randomness from placement, spawn order or
shard count — otherwise two deployments of the same spec diverge.
:func:`keyed_shard_seed` is the repo-wide convention: a shard's RNG seed
is a pure function of ``(root seed, routing key)`` and nothing else. The
cluster coordinator, the engine's ``seeding="keyed"`` mode, the API's
in-process backend and any gateway-served deployment all call it with
the same keys (``"s0"``, ``"s3"``, split sub-shards ``"s3/1"``, ...),
which is what makes cross-backend — and cross-*process*, over a socket —
assignment parity possible. Its exact outputs are part of the
compatibility surface (snapshots and journals recorded by one version
must replay identically on the next), so they are pinned by a
regression test; changing the derivation is a breaking change to every
stored snapshot and must come with a version bump.
"""

from __future__ import annotations

import time
import tracemalloc
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ensure_rng",
    "keyed_shard_seed",
    "spawn_rng",
    "Stopwatch",
    "measure_peak_memory",
]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` draws fresh OS entropy, an ``int`` seeds deterministically and
    an existing generator is passed through unchanged (so callers can share
    one stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def keyed_shard_seed(seed: int, key: str) -> int:
    """Deterministic per-shard seed derived from a root seed and a routing
    key (``"s3"``, ``"s3/1"``, ...).

    The one seeding convention every assignment backend shares: the
    cluster coordinator derives worker-process shard specs with it, the
    sharded engine's ``seeding="keyed"`` mode matches it, and the API
    layer's in-process backend seeds its single region tree with
    ``keyed_shard_seed(seed, "s0")``. Because the seed depends only on
    ``(root seed, key)`` — not placement, shard count or build order —
    any two backends given the same root seed grow bit-identical shard
    streams, which is what the backend conformance suite asserts.
    """
    entropy = np.random.SeedSequence([int(seed), zlib.crc32(key.encode())])
    return int(entropy.generate_state(1)[0])


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by experiment sweeps so each repetition gets a statistically
    independent but reproducible stream.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer.

    The paper reports "the total time an algorithm takes from receiving a
    task to the completion of the assignment"; pipelines wrap exactly that
    region in :meth:`timed` so setup (HST construction, workload synthesis)
    is excluded, matching the paper's metric.
    """

    elapsed: float = 0.0
    _laps: list[float] = field(default_factory=list)

    @contextmanager
    def timed(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self._laps.append(lap)

    @property
    def laps(self) -> list[float]:
        return list(self._laps)

    def reset(self) -> None:
        self.elapsed = 0.0
        self._laps.clear()


@contextmanager
def measure_peak_memory(result: dict):
    """Record peak traced allocation (MiB) into ``result['peak_mib']``.

    This is the Python analogue of the paper's resident-memory column: it
    captures the extra heap the algorithm under test allocates (HST, tries,
    KD-trees, matchings), not the interpreter baseline.
    """
    tracemalloc.start()
    try:
        yield result
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        result["peak_mib"] = peak / (1024 * 1024)
