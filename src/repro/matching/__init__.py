"""Online and offline matching engines (paper Sec. III-E and baselines)."""

from .capacitated import CapacitatedHSTGreedyMatcher
from .chain_greedy import HSTChainMatcher
from .euclidean_greedy import EuclideanGreedyMatcher
from .hst_greedy import HSTGreedyMatcher, max_level_within
from .leaf_trie import LeafTrie
from .offline import optimal_matching, optimal_total_distance
from .prob_assign import NoiseDifferencePool, ProbMatcher
from .reachability import estimate_stretch, radius_to_tree_units, sample_radii
from .types import Assignment, MatchingResult

__all__ = [
    "Assignment",
    "CapacitatedHSTGreedyMatcher",
    "EuclideanGreedyMatcher",
    "HSTChainMatcher",
    "HSTGreedyMatcher",
    "LeafTrie",
    "MatchingResult",
    "NoiseDifferencePool",
    "ProbMatcher",
    "estimate_stretch",
    "max_level_within",
    "optimal_matching",
    "optimal_total_distance",
    "radius_to_tree_units",
    "sample_radii",
]
