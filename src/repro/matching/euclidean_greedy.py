"""Online greedy matching in the Euclidean plane (the paper's ``greedy``).

This is the assignment half of the Lap-GR baseline: each arriving task is
matched to the closest *available* worker by Euclidean distance between the
reported (noisy) locations. Tong et al. (PVLDB 2016) showed this simple
heuristic is strong in practice, which is why the paper adopts it.

The paper's implementation scans all workers per task (O(n) each,
O(n m) total). We keep exactly the same decisions but accelerate the scan
with a static KD-tree over worker locations and an expanding
k-nearest-neighbour probe that skips already-consumed workers; an optional
``naive=True`` switch retains the literal scan for cross-checking.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..geometry.points import as_point, as_points

__all__ = ["EuclideanGreedyMatcher"]


class EuclideanGreedyMatcher:
    """Greedy online matcher over reported worker coordinates.

    Parameters
    ----------
    worker_locations:
        ``(n, 2)`` reported (noisy) worker locations; worker ids are row
        indices.
    naive:
        When ``True``, use the literal O(n)-per-task scan of the paper
        instead of the KD-tree probe. Decisions are identical up to ties.
    """

    def __init__(self, worker_locations, naive: bool = False) -> None:
        self._locations = as_points(worker_locations)
        self._available = np.ones(len(self._locations), dtype=bool)
        self._n_available = len(self._locations)
        self._naive = naive
        self._tree = None if naive or not len(self._locations) else cKDTree(
            self._locations
        )

    @property
    def available(self) -> int:
        """Number of workers not yet consumed."""
        return self._n_available

    def assign(self, task_location) -> tuple[int, float] | None:
        """Assign the closest available worker to the reported task location.

        Returns ``(worker_id, reported_distance)`` and consumes the worker,
        or ``None`` when no workers remain. The reported distance is between
        the *noisy* coordinates — the matcher never sees true locations.
        """
        if self._n_available == 0:
            return None
        loc = as_point(task_location)
        if self._naive:
            worker, dist = self._scan(loc)
        else:
            worker, dist = self._probe(loc)
        self._available[worker] = False
        self._n_available -= 1
        return worker, dist

    def assign_within(self, task_location, radius: float) -> tuple[int, float] | None:
        """Like :meth:`assign` but only if the nearest worker is within
        ``radius`` of the reported task location; otherwise leaves the pool
        untouched and returns ``None``."""
        if self._n_available == 0:
            return None
        loc = as_point(task_location)
        worker, dist = self._scan(loc) if self._naive else self._probe(loc)
        if dist > radius:
            return None
        self._available[worker] = False
        self._n_available -= 1
        return worker, dist

    def release(self, worker_id: int) -> None:
        """Return a previously consumed worker to the pool."""
        if self._available[worker_id]:
            raise ValueError(f"worker {worker_id} is not consumed")
        self._available[worker_id] = True
        self._n_available += 1

    # ------------------------------------------------------------------ #
    # internals                                                           #
    # ------------------------------------------------------------------ #

    def _scan(self, loc: np.ndarray) -> tuple[int, float]:
        diffs = self._locations[self._available] - loc
        dists = np.hypot(diffs[:, 0], diffs[:, 1])
        pos = int(np.argmin(dists))
        worker = int(np.flatnonzero(self._available)[pos])
        return worker, float(dists[pos])

    def _probe(self, loc: np.ndarray) -> tuple[int, float]:
        """Expanding k-NN probe: query 1, 2, 4, ... neighbours until one is
        still available. Bounded by the pool size, so always terminates."""
        n = len(self._locations)
        k = 1
        while True:
            k = min(k, n)
            dists, idx = self._tree.query(loc, k=k)
            if k == 1:
                dists, idx = np.array([dists]), np.array([idx])
            for d, i in zip(dists, idx):
                if i < n and self._available[i]:
                    return int(i), float(d)
            if k == n:  # pragma: no cover - pool exhausted is caught earlier
                raise AssertionError("no available worker found")
            k *= 2
