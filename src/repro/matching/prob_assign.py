"""Reimplementation of the ``Prob`` baseline (To et al., ICDE 2018).

The paper's matching-size case study (Sec. IV-C) compares TBF against
``Prob``: planar-Laplace obfuscation plus a *probability-based* assignment.
To et al.'s server sees only noisy locations, so for each candidate worker
it estimates the probability that the **true** task-worker distance is
within the worker's reachable radius, and assigns the task to the worker
maximizing that probability (subject to a minimum-confidence threshold).

The original is closed source; we reproduce the published idea faithfully:

* Both endpoints carry i.i.d. planar Laplace noise, so the true distance is
  ``|| delta - S ||`` where ``delta`` is the observed noisy displacement
  and ``S`` is the *difference of two planar Laplace noises* — an isotropic
  2-D random variable independent of the locations.
* We draw one reusable Monte-Carlo pool of ``S`` samples per mechanism
  (the pool depends only on ``epsilon``) and estimate
  ``P(true distance <= R)`` for an observed displacement by counting pool
  samples landing in the radius-``R`` disk. By isotropy only the observed
  distance matters, so the count reduces to a vectorized quadratic test.
* Candidate workers are pre-filtered with a KD-tree ball query of radius
  ``R_max + q``-quantile of ``||S||``, outside which the probability is
  negligible; this is an efficiency device only.

Assignment semantics follow the case study: the chosen worker serves the
task iff the true distance is actually within its radius (checked by the
simulator, not here); see :mod:`repro.crowdsourcing.pipelines`.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..geometry.points import as_point, as_points
from ..privacy.laplace import PlanarLaplaceMechanism
from ..utils import ensure_rng

__all__ = ["NoiseDifferencePool", "ProbMatcher"]


class NoiseDifferencePool:
    """Monte-Carlo pool of planar-Laplace noise *differences*.

    ``S = N1 - N2`` with ``N1, N2`` i.i.d. planar Laplace(eps). The pool is
    drawn once and reused for every probability estimate, making each
    estimate O(pool size) with two cached 1-D arrays:
    ``sx`` (x-components) and ``norm2`` (squared magnitudes).
    """

    def __init__(
        self,
        epsilon: float,
        n_samples: int = 2048,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError(f"need at least one sample, got {n_samples}")
        rng = ensure_rng(seed)
        mech = PlanarLaplaceMechanism(epsilon)
        origin = np.zeros((n_samples, 2))
        diff = mech.obfuscate_many(origin, rng) - mech.obfuscate_many(origin, rng)
        self.epsilon = float(epsilon)
        self.n_samples = n_samples
        self._sx = diff[:, 0].copy()
        self._norm2 = (diff**2).sum(axis=1)

    def reach_probability(self, observed_distance, radius) -> np.ndarray:
        """``P(||delta - S|| <= radius)`` for ``||delta|| = observed_distance``.

        By isotropy, place ``delta`` on the x-axis; then
        ``||delta - S||^2 = d^2 - 2 d S_x + ||S||^2``. Broadcasts over
        arrays of distances/radii of equal shape.
        """
        d = np.atleast_1d(np.asarray(observed_distance, dtype=np.float64))
        r = np.broadcast_to(
            np.asarray(radius, dtype=np.float64), d.shape
        ).astype(np.float64)
        if np.any(d < 0) or np.any(r < 0):
            raise ValueError("distances and radii must be non-negative")
        true_d2 = (
            d[:, None] ** 2 - 2.0 * d[:, None] * self._sx[None, :] + self._norm2
        )
        return (true_d2 <= r[:, None] ** 2).mean(axis=1)

    def magnitude_quantile(self, q: float) -> float:
        """``q``-quantile of ``||S||`` (for candidate pre-filtering)."""
        return float(np.quantile(np.sqrt(self._norm2), q))


class ProbMatcher:
    """Online probability-based assignment over noisy locations.

    Parameters
    ----------
    worker_locations:
        ``(n, 2)`` *reported* (noisy) worker locations.
    radii:
        Per-worker reachable distance (true-distance constraint).
    pool:
        Shared :class:`NoiseDifferencePool` for the session's epsilon.
    min_probability:
        Assignment threshold: tasks with no worker reaching this estimated
        success probability stay unassigned.
    candidate_quantile:
        Noise-magnitude quantile used for the KD-tree candidate radius.
    """

    def __init__(
        self,
        worker_locations,
        radii,
        pool: NoiseDifferencePool,
        min_probability: float = 0.05,
        candidate_quantile: float = 0.95,
    ) -> None:
        self._locations = as_points(worker_locations)
        self._radii = np.asarray(radii, dtype=np.float64)
        if self._radii.shape != (len(self._locations),):
            raise ValueError("need exactly one radius per worker")
        if np.any(self._radii < 0):
            raise ValueError("radii must be non-negative")
        if not 0.0 <= min_probability <= 1.0:
            raise ValueError("min_probability must lie in [0, 1]")
        self._pool = pool
        self._min_probability = float(min_probability)
        self._available = np.ones(len(self._locations), dtype=bool)
        self._n_available = len(self._locations)
        self._tree = cKDTree(self._locations) if len(self._locations) else None
        self._candidate_radius = (
            float(self._radii.max(initial=0.0))
            + pool.magnitude_quantile(candidate_quantile)
        )

    @property
    def available(self) -> int:
        """Number of workers not yet consumed."""
        return self._n_available

    def assign(self, task_location) -> tuple[int, float] | None:
        """Pick the available worker with the highest estimated success
        probability for the reported task location.

        Returns ``(worker_id, estimated_probability)`` and consumes the
        worker; ``None`` when no candidate clears ``min_probability``.
        """
        if self._n_available == 0 or self._tree is None:
            return None
        loc = as_point(task_location)
        candidates = [
            i
            for i in self._tree.query_ball_point(loc, self._candidate_radius)
            if self._available[i]
        ]
        if not candidates:
            return None
        cand = np.asarray(candidates, dtype=np.intp)
        diffs = self._locations[cand] - loc
        dists = np.hypot(diffs[:, 0], diffs[:, 1])
        probs = self._pool.reach_probability(dists, self._radii[cand])
        best = int(np.argmax(probs))
        if probs[best] < self._min_probability:
            return None
        worker = int(cand[best])
        self._available[worker] = False
        self._n_available -= 1
        return worker, float(probs[best])

    def release(self, worker_id: int) -> None:
        """Return a previously consumed worker to the pool."""
        if self._available[worker_id]:
            raise ValueError(f"worker {worker_id} is not consumed")
        self._available[worker_id] = True
        self._n_available += 1
