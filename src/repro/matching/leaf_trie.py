"""A counted trie over HST leaf paths.

This is the data structure that makes HST-Greedy (paper Algorithm 4) fast:
``nearest available worker on the tree`` is ``worker whose leaf path shares
the longest prefix with the task's leaf path``. The trie stores available
workers keyed by leaf path with per-node subtree counts, giving

* ``insert`` / ``remove`` in O(D),
* ``nearest`` in O(D * c),
* lazy enumeration of *all* workers in non-decreasing tree distance
  (:meth:`iter_candidates`) for the reachability-constrained variant,

compared to the O(n) per task of the paper's naive scan (their stated
complexity is O(D n m); see ``benchmarks/bench_ablation_trie.py``).

Ties (several workers equally close on the tree) are broken deterministically
by descending into the smallest live child index and taking the most recently
inserted item at a leaf — the paper allows arbitrary tie-breaking.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..hst.paths import Path, tree_distance_for_level

__all__ = ["LeafTrie"]


class _Node:
    __slots__ = ("count", "children", "items")

    def __init__(self) -> None:
        self.count = 0
        self.children: dict[int, _Node] = {}
        self.items: list[int] | None = None  # only at leaves


class LeafTrie:
    """Multiset of (item id, leaf path) with nearest-on-tree queries."""

    def __init__(self, depth: int, branching: int) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if branching < 1:
            raise ValueError(f"branching must be >= 1, got {branching}")
        self.depth = depth
        self.branching = branching
        self._root = _Node()
        self._paths: dict[int, Path] = {}

    def __len__(self) -> int:
        return self._root.count

    def __contains__(self, item: int) -> bool:
        return item in self._paths

    def path_of(self, item: int) -> Path:
        """Leaf path under which ``item`` is stored."""
        return self._paths[item]

    def items(self) -> list[int]:
        """All stored item ids, in no particular order."""
        return list(self._paths)

    # ------------------------------------------------------------------ #
    # updates                                                             #
    # ------------------------------------------------------------------ #

    def insert(self, path: Path, item: int) -> None:
        """Add ``item`` at ``path``. Item ids must be unique."""
        path = self._validate(path)
        if item in self._paths:
            raise ValueError(f"item {item} already present")
        node = self._root
        node.count += 1
        for v in path:
            child = node.children.get(v)
            if child is None:
                child = node.children[v] = _Node()
            node = child
            node.count += 1
        if node.items is None:
            node.items = []
        node.items.append(item)
        self._paths[item] = path

    def remove(self, item: int) -> None:
        """Remove a previously inserted item."""
        path = self._paths.pop(item, None)
        if path is None:
            raise KeyError(f"item {item} not present")
        node = self._root
        node.count -= 1
        chain = []
        for v in path:
            chain.append((node, v))
            node = node.children[v]
            node.count -= 1
        node.items.remove(item)
        # Prune empty branches so iteration never revisits dead subtrees.
        for parent, v in reversed(chain):
            if parent.children[v].count == 0:
                del parent.children[v]
            else:
                break

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    def iter_candidates(self, path: Path) -> Iterator[tuple[int, int]]:
        """Yield ``(item, lca_level)`` in non-decreasing tree distance.

        All stored items are eventually yielded; items at LCA level ``l``
        are at tree distance ``2**(l+2) - 4`` from ``path``.
        """
        path = self._validate(path)
        # Walk down the query path recording the node chain that exists.
        chain: list[_Node] = [self._root]
        node = self._root
        for v in path:
            child = node.children.get(v)
            if child is None:
                break
            chain.append(child)
            node = child
        # Exact-leaf items first (level 0), then widen level by level.
        deepest = len(chain) - 1  # prefix length of the deepest live node
        if deepest == self.depth and chain[-1].items:
            # Most recently inserted first: cheap and deterministic.
            for item in reversed(list(chain[-1].items)):
                yield item, 0
        for prefix_len in range(min(deepest, self.depth - 1), -1, -1):
            level = self.depth - prefix_len
            parent = chain[prefix_len]
            skip = path[prefix_len]
            for v in sorted(parent.children):
                if v == skip:
                    continue
                yield from self._iter_subtree(parent.children[v], level)

    def nearest(self, path: Path) -> tuple[int, int] | None:
        """Closest item on the tree, as ``(item, lca_level)``; ``None`` if empty.

        A direct walk rather than ``next(iter_candidates(...))``: the
        nearest item is the first one candidate enumeration would yield
        (same chain, same smallest-live-child descent, same
        most-recent-at-leaf tie-break), found here without spinning up the
        generator machinery — this query is the per-task hot path.
        """
        path = self._validate(path)
        chain: list[_Node] = [self._root]
        node = self._root
        for v in path:
            child = node.children.get(v)
            if child is None:
                break
            chain.append(child)
            node = child
        deepest = len(chain) - 1
        if deepest == self.depth and chain[-1].items:
            return chain[-1].items[-1], 0
        for prefix_len in range(min(deepest, self.depth - 1), -1, -1):
            parent = chain[prefix_len]
            skip = path[prefix_len]
            live = sorted(parent.children)
            for v in live:
                if v == skip:
                    continue
                # leaf-ward descent through the smallest live child mirrors
                # _iter_subtree's DFS order; items live only at leaves
                node = parent.children[v]
                while node.items is None:
                    node = node.children[min(node.children)]
                return node.items[-1], self.depth - prefix_len
        return None

    def pop_nearest(self, path: Path) -> tuple[int, int] | None:
        """Remove and return the closest item (Algorithm 4's inner step)."""
        found = self.nearest(path)
        if found is not None:
            self.remove(found[0])
        return found

    def pop_nearest_within(
        self, path: Path, max_tree_distance: float
    ) -> tuple[int, int] | None:
        """Closest item at tree distance <= ``max_tree_distance``, removed.

        Used by the matching-size case study where the server filters by a
        (tree-unit) reachability radius.
        """
        found = self.nearest(path)
        if found is None:
            return None
        item, level = found
        if tree_distance_for_level(level) > max_tree_distance:
            return None
        self.remove(item)
        return found

    # ------------------------------------------------------------------ #
    # internals                                                           #
    # ------------------------------------------------------------------ #

    def _iter_subtree(self, node: _Node, level: int) -> Iterator[tuple[int, int]]:
        """DFS over live leaves below ``node``, yielding ``(item, level)``."""
        stack = [node]
        while stack:
            current = stack.pop()
            if current.items:
                for item in reversed(list(current.items)):
                    yield item, level
            # reversed-sorted so the smallest child index is explored first
            for v in sorted(current.children, reverse=True):
                stack.append(current.children[v])

    def _validate(self, path: Path) -> Path:
        if type(path) is tuple and len(path) == self.depth:
            for v in path:
                if type(v) is not int or not 0 <= v < self.branching:
                    break
            else:
                return path  # already canonical — the hot-path shape
        p = tuple(int(v) for v in path)
        if len(p) != self.depth:
            raise ValueError(f"path length {len(p)} != depth {self.depth}")
        for v in p:
            if not 0 <= v < self.branching:
                raise ValueError(f"child index {v} outside [0, {self.branching})")
        return p
