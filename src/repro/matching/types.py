"""Shared result types for online matching algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.points import as_points

__all__ = ["Assignment", "MatchingResult"]


@dataclass(frozen=True)
class Assignment:
    """One task-worker pair decided by an online matcher.

    ``distance`` is the *true* Euclidean distance between the pair's actual
    locations — the quantity the paper's total-distance objective counts —
    filled in by the pipeline, which knows the unobfuscated coordinates.
    ``success`` marks reachability for the matching-size case study
    (always ``True`` for the minimum-distance objective).
    """

    task: int
    worker: int
    distance: float = float("nan")
    success: bool = True


@dataclass
class MatchingResult:
    """Outcome of running an online matcher over a full task arrival order."""

    assignments: list[Assignment] = field(default_factory=list)
    unassigned_tasks: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Matching size: the number of successful assignments."""
        return sum(1 for a in self.assignments if a.success)

    @property
    def total_distance(self) -> float:
        """Total true travel distance over successful assignments."""
        return float(
            sum(a.distance for a in self.assignments if a.success)
        )

    def worker_of(self, task: int) -> int | None:
        """Worker assigned to ``task``, or ``None``."""
        for a in self.assignments:
            if a.task == task:
                return a.worker
        return None

    @staticmethod
    def from_pairs(pairs, task_locations, worker_locations) -> "MatchingResult":
        """Build a result from ``(task, worker)`` index pairs, computing the
        true distances from the given coordinate arrays."""
        tasks = as_points(task_locations)
        workers = as_points(worker_locations)
        result = MatchingResult()
        for task, worker in pairs:
            d = float(np.hypot(*(tasks[task] - workers[worker])))
            result.assignments.append(Assignment(task=task, worker=worker, distance=d))
        return result
