"""Capacitated HST-Greedy: workers that serve more than one task.

The paper's OMBM model consumes a worker on first assignment. Practical
platforms let couriers batch orders; the paper's own reference line on
"flexible online task assignment" (Tong et al., PVLDB'17) studies exactly
that. This extension gives each worker an integer capacity and keeps it
matchable until the capacity is exhausted, preserving Algorithm 4's
nearest-on-tree rule for every individual assignment.

With all capacities equal to 1 this reduces exactly to
:class:`~repro.matching.hst_greedy.HSTGreedyMatcher` (tested).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..hst.paths import Path
from .leaf_trie import LeafTrie

__all__ = ["CapacitatedHSTGreedyMatcher"]


class CapacitatedHSTGreedyMatcher:
    """Nearest-on-tree assignment with per-worker capacities.

    Parameters
    ----------
    depth, branching:
        Shape of the complete HST the leaf paths live in.
    worker_paths:
        Obfuscated leaf path per worker; ids are positions.
    capacities:
        Integer capacity per worker (scalar broadcasts). A worker stays in
        the pool until it has been assigned ``capacity`` tasks.
    """

    def __init__(
        self,
        depth: int,
        branching: int,
        worker_paths: Sequence[Path],
        capacities=1,
    ) -> None:
        n = len(worker_paths)
        caps = np.broadcast_to(
            np.asarray(capacities, dtype=np.int64), (n,)
        ).copy()
        if np.any(caps < 0):
            raise ValueError("capacities must be non-negative")
        self._paths = [tuple(int(v) for v in p) for p in worker_paths]
        self._remaining = caps
        self._trie = LeafTrie(depth, branching)
        for worker_id, path in enumerate(self._paths):
            if caps[worker_id] > 0:
                self._trie.insert(path, worker_id)

    @property
    def available(self) -> int:
        """Workers with remaining capacity."""
        return len(self._trie)

    @property
    def remaining_capacity(self) -> int:
        """Total assignments the pool can still absorb."""
        return int(self._remaining.sum())

    def remaining_of(self, worker_id: int) -> int:
        """Remaining capacity of one worker."""
        return int(self._remaining[worker_id])

    def assign(self, task_path: Path) -> tuple[int, int] | None:
        """Assign the nearest worker with spare capacity; decrement it.

        Returns ``(worker_id, lca_level)`` or ``None`` when the pool's
        total capacity is exhausted.
        """
        found = self._trie.nearest(task_path)
        if found is None:
            return None
        worker_id, level = found
        self._remaining[worker_id] -= 1
        if self._remaining[worker_id] == 0:
            self._trie.remove(worker_id)
        return worker_id, level

    def release(self, worker_id: int) -> None:
        """Undo one assignment of ``worker_id`` (capacity returns)."""
        if self._remaining[worker_id] < 0:  # pragma: no cover - guarded above
            raise AssertionError("negative capacity")
        self._remaining[worker_id] += 1
        if worker_id not in self._trie:
            self._trie.insert(self._paths[worker_id], worker_id)
