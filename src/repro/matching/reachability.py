"""Reachability support for the matching-size case study (paper Sec. IV-C).

The case study gives every worker a *reachable distance*: an assignment
succeeds only when the true task-worker Euclidean distance is within it.
The paper draws radii uniformly from [10, 20] (synthetic) and [500, 1000]
(real data).

Because the HST-side server reasons in *tree* distances — which dominate
Euclidean distances by the HST's stretch — filtering candidates by a raw
radius would be far too strict. :func:`estimate_stretch` measures the
median tree-over-Euclidean expansion on the predefined points, and
:func:`radius_to_tree_units` converts each worker's Euclidean radius to a
comparable tree-unit budget. This is a server-side calibration that uses
only public information (the published tree), so it costs no privacy.
"""

from __future__ import annotations

import numpy as np

from ..hst.tree import HST
from ..utils import ensure_rng

__all__ = [
    "sample_radii",
    "estimate_stretch",
    "radius_to_tree_units",
]


def sample_radii(n: int, low: float, high: float, seed=None) -> np.ndarray:
    """Draw ``n`` worker reachable distances uniformly from ``[low, high]``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0 <= low <= high:
        raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
    rng = ensure_rng(seed)
    return rng.uniform(low, high, size=n)


def estimate_stretch(
    tree: HST, n_pairs: int = 512, seed=None
) -> float:
    """Median tree-distance / Euclidean-distance ratio over random leaf pairs.

    The FRT guarantee is ``d <= E[dT] <= O(log N) d`` (in the rescaled
    metric); the realized median stretch of *this* tree is what the server
    should calibrate reachability filters with.
    """
    n = tree.n_points
    if n < 2:
        return 1.0
    rng = ensure_rng(seed)
    a = rng.integers(0, n, size=n_pairs)
    b = rng.integers(0, n, size=n_pairs)
    keep = a != b
    a, b = a[keep], b[keep]
    if len(a) == 0:
        return 1.0
    ratios = []
    pts = tree.points
    for i, j in zip(a.tolist(), b.tolist()):
        d = float(np.hypot(*(pts[i] - pts[j])))
        if d == 0.0:
            continue
        ratios.append(tree.tree_distance_points(i, j) / tree.metric_scale / d)
    return float(np.median(ratios)) if ratios else 1.0


def radius_to_tree_units(
    radii, tree: HST, stretch: float | None = None, seed=None
) -> np.ndarray:
    """Convert Euclidean reachable radii to tree-unit filter budgets.

    ``tree_budget = radius * stretch * metric_scale``; with the median
    stretch this accepts roughly the workers a Euclidean filter of the same
    radius would.
    """
    if stretch is None:
        stretch = estimate_stretch(tree, seed=seed)
    r = np.asarray(radii, dtype=np.float64)
    if np.any(r < 0):
        raise ValueError("radii must be non-negative")
    return r * float(stretch) * tree.metric_scale
