"""Offline optimal minimum bipartite matching.

The competitive ratio (paper Definition 8) compares an online algorithm's
expected total distance against ``MOPT``: the minimum-total-distance
matching when all tasks and workers are known in advance. This module
computes ``MOPT`` exactly with the Hungarian algorithm
(:func:`scipy.optimize.linear_sum_assignment`), which handles rectangular
instances (more workers than tasks) directly.

This is not part of any compared algorithm — it is the yardstick used by
the competitive-ratio ablation (``bench_ablation_competitive.py``) and by
tests of the online matchers.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..geometry.points import as_points
from .types import MatchingResult

__all__ = ["optimal_matching", "optimal_total_distance"]

#: Dense-cost-matrix guard: n*m above this raises rather than thrashing.
MAX_COST_CELLS = 50_000_000


def optimal_matching(task_locations, worker_locations) -> MatchingResult:
    """Minimum-total-distance offline matching of all tasks to workers.

    Every task is matched when ``len(workers) >= len(tasks)``; otherwise the
    cheapest ``len(workers)`` tasks are matched and the rest are reported
    unassigned (matching the OMBM definition of maximal matching).
    """
    tasks = as_points(task_locations)
    workers = as_points(worker_locations)
    n_t, n_w = len(tasks), len(workers)
    if n_t == 0 or n_w == 0:
        return MatchingResult(unassigned_tasks=list(range(n_t)))
    if n_t * n_w > MAX_COST_CELLS:
        raise ValueError(
            f"instance too large for dense Hungarian: {n_t} x {n_w} cells"
        )
    diff = tasks[:, None, :] - workers[None, :, :]
    cost = np.hypot(diff[..., 0], diff[..., 1])
    rows, cols = linear_sum_assignment(cost)
    result = MatchingResult.from_pairs(
        zip(rows.tolist(), cols.tolist()), tasks, workers
    )
    matched = set(rows.tolist())
    result.unassigned_tasks = [t for t in range(n_t) if t not in matched]
    return result


def optimal_total_distance(task_locations, worker_locations) -> float:
    """Total distance of the offline optimal matching (``d(MOPT)``)."""
    return optimal_matching(task_locations, worker_locations).total_distance
