"""HST-Chain: the chain-reassignment matcher of Bansal et al. (ref. [19]).

The paper's related work describes the other classical HST-based online
matching algorithm — Bansal, Buchbinder, Gupta, Naor (Algorithmica 2014),
O(log^2 k)-competitive: a task is "successively assigned to workers
(including those matched ones) until it finds an unmatched worker". Each
hop moves the search to the position of an already-matched worker, letting
chains of short hops reach an unmatched worker that is globally far but
locally connected.

The paper evaluates only HST-Greedy (its Algorithm 4); HST-Chain is
provided as an extension and compared in
``benchmarks/bench_ablation_chain.py``. It operates on the same obfuscated
leaves, so it plugs into the same privacy mechanism unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hst.paths import Path
from .leaf_trie import LeafTrie

__all__ = ["HSTChainMatcher"]


class HSTChainMatcher:
    """Online matching by chain reassignment on HST leaves.

    Parameters
    ----------
    depth, branching:
        Shape of the complete HST the leaf paths live in.
    worker_paths:
        Obfuscated leaf path per worker; ids are positions.
    max_hops:
        Safety bound on chain length (defaults to a generous multiple of
        the tree depth; chains longer than this fall back to the nearest
        unmatched worker).
    """

    def __init__(
        self,
        depth: int,
        branching: int,
        worker_paths: Sequence[Path],
        max_hops: int = 64,
    ) -> None:
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        self._paths = [tuple(int(v) for v in p) for p in worker_paths]
        # all workers, matched or not: hop targets
        self._all = LeafTrie(depth, branching)
        # only unmatched workers: chain terminals
        self._free = LeafTrie(depth, branching)
        for worker_id, path in enumerate(self._paths):
            self._all.insert(path, worker_id)
            self._free.insert(path, worker_id)
        self._max_hops = max_hops

    @property
    def available(self) -> int:
        """Number of unmatched workers."""
        return len(self._free)

    def assign(self, task_path: Path) -> tuple[int, int] | None:
        """Chain from the task's leaf until an unmatched worker is found.

        Returns ``(worker_id, hops)`` where ``hops`` counts the matched
        workers traversed before the terminal; ``None`` when no unmatched
        workers remain.
        """
        if len(self._free) == 0:
            return None
        position = tuple(int(v) for v in task_path)
        visited: set[int] = set()
        for hop in range(self._max_hops):
            candidate = self._nearest_unvisited(position, visited)
            if candidate is None:
                break
            worker_id = candidate
            if worker_id in self._free:
                self._free.remove(worker_id)
                return worker_id, hop
            # hop to the matched worker's reported position and continue
            visited.add(worker_id)
            position = self._paths[worker_id]
        # chain exhausted: fall back to the nearest unmatched worker
        found = self._free.pop_nearest(position)
        assert found is not None  # len(self._free) > 0 checked above
        return found[0], self._max_hops

    def _nearest_unvisited(self, position: Path, visited: set[int]) -> int | None:
        for worker_id, _level in self._all.iter_candidates(position):
            if worker_id not in visited:
                return worker_id
        return None
