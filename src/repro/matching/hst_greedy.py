"""HST-Greedy online matching (paper Algorithm 4).

Each arriving task is assigned to the available worker whose (obfuscated)
leaf is closest *on the tree*; the worker is then consumed. The paper's
pseudocode scans all workers per task (O(D n) per assignment); we use the
:class:`~repro.matching.leaf_trie.LeafTrie` to do it in O(D c) without
changing the algorithm's decisions (same distance ordering; ties broken
arbitrarily in both).

Two variants are provided:

* :class:`HSTGreedyMatcher` — the minimum-total-distance objective of the
  main experiments (Figs. 6-7).
* :meth:`HSTGreedyMatcher.assign_reachable` — the matching-size case study
  (Fig. 8): the server only accepts a worker whose *tree* distance is
  within the worker's (stretch-adjusted) reachable radius.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..hst.paths import Path, tree_distance_for_level
from .leaf_trie import LeafTrie

__all__ = ["HSTGreedyMatcher", "max_level_within"]


def max_level_within(max_tree_distance: float) -> int:
    """Largest LCA level whose tree distance fits in ``max_tree_distance``.

    Returns -1 when even level 0 (distance 0) exceeds the bound, i.e. the
    bound is negative.
    """
    if max_tree_distance < 0:
        return -1
    level = 0
    while tree_distance_for_level(level + 1) <= max_tree_distance:
        level += 1
    return level


class HSTGreedyMatcher:
    """Online greedy matching on obfuscated HST leaves (Algorithm 4).

    Parameters
    ----------
    depth, branching:
        Shape of the complete HST the leaf paths live in.
    worker_paths:
        Obfuscated leaf path of every registered worker; worker ids are the
        positions in this sequence.
    """

    def __init__(
        self, depth: int, branching: int, worker_paths: Sequence[Path]
    ) -> None:
        self._trie = LeafTrie(depth, branching)
        # dense slot -> leaf-path table; the trie indexes availability, the
        # array is the flat record of every slot ever admitted (release and
        # snapshot rebuilds read paths from here instead of re-collecting
        # tuples). Grown geometrically by add_worker.
        n = len(worker_paths)
        self._slot_paths = np.zeros((max(n, 8), depth), dtype=np.int64)
        for worker_id, path in enumerate(worker_paths):
            self._trie.insert(path, worker_id)
            self._slot_paths[worker_id] = path
        self._next_slot = n

    @classmethod
    def for_tree(cls, tree, worker_paths: Sequence[Path]) -> "HSTGreedyMatcher":
        """Build a matcher sized for an :class:`~repro.hst.tree.HST`."""
        return cls(tree.depth, tree.branching, worker_paths)

    @property
    def available(self) -> int:
        """Number of workers not yet consumed."""
        return len(self._trie)

    @property
    def available_ids(self) -> list[int]:
        """Sorted slot ids of the workers not yet consumed.

        Checkpointing hook: a matcher restore rebuilds the trie from all
        registered workers and then consumes exactly the slots missing
        from this list (see :mod:`repro.cluster.snapshot`).
        """
        return sorted(self._trie.items())

    def remove_worker(self, slot: int) -> None:
        """Consume a specific worker slot without an assignment.

        Used when replaying consumed slots during a snapshot restore;
        raises ``KeyError`` if the slot is not available.
        """
        self._trie.remove(slot)

    def add_worker(self, path: Path) -> int:
        """Admit a worker that arrived after construction.

        The paper's OMBM model fixes the worker set up front; the serving
        layer (:mod:`repro.service`) relaxes that to streaming worker
        arrivals, which only requires inserting a fresh leaf into the trie.
        Returns the new worker's slot id (continuing the constructor's
        numbering).
        """
        slot = self._next_slot
        self._next_slot += 1
        self._trie.insert(path, slot)
        if slot >= len(self._slot_paths):
            grown = np.zeros(
                (2 * len(self._slot_paths), self._slot_paths.shape[1]),
                dtype=self._slot_paths.dtype,
            )
            grown[:slot] = self._slot_paths
            self._slot_paths = grown
        self._slot_paths[slot] = path
        return slot

    def slot_path(self, slot: int) -> Path:
        """Leaf path a slot was admitted under (consumed slots included)."""
        if not 0 <= slot < self._next_slot:
            raise IndexError(f"slot {slot} outside [0, {self._next_slot})")
        return tuple(self._slot_paths[slot].tolist())

    def assign(self, task_path: Path) -> tuple[int, int] | None:
        """Assign the nearest available worker to the task's leaf.

        Returns ``(worker_id, lca_level)`` and consumes the worker, or
        ``None`` when no workers remain.
        """
        return self._trie.pop_nearest(task_path)

    def assign_reachable(
        self, task_path: Path, radius_tree_units
    ) -> tuple[int, int] | None:
        """Assign the nearest available worker that *looks* reachable.

        ``radius_tree_units`` is either a scalar (uniform radius) or a
        per-worker sequence indexed by worker id, expressed in tree units.
        Scans workers in non-decreasing tree distance and takes the first
        whose own radius covers the distance; consumes it. Returns ``None``
        (task stays unassigned) if no available worker qualifies.
        """
        per_worker = not _is_scalar(radius_tree_units)
        for worker_id, level in self._trie.iter_candidates(task_path):
            limit = (
                radius_tree_units[worker_id] if per_worker else radius_tree_units
            )
            if tree_distance_for_level(level) <= limit:
                self._trie.remove(worker_id)
                return worker_id, level
        return None

    def assign_reachable_preferring_radius(
        self, task_path: Path, radii_tree_units, radii
    ) -> tuple[int, int] | None:
        """Budget-filtered assignment with a radius-aware tie-break.

        Like :meth:`assign_reachable`, but among the workers tied at the
        nearest feasible tree distance it proposes the one with the largest
        *true* reachable radius — same tree distance (still "the nearest
        reachable worker on the HST"), strictly higher success odds when a
        proposal is judged on true locations. Falls back to the largest-
        radius worker at the nearest level when nobody passes the budget
        filter (a failed proposal costs nothing when failures release the
        worker).
        """
        best_pass: tuple[float, int, int] | None = None  # (radius, id, level)
        fallback: tuple[float, int, int] | None = None  # best at nearest level
        nearest_level: int | None = None
        for worker_id, level in self._trie.iter_candidates(task_path):
            if nearest_level is None:
                nearest_level = level
            if level != nearest_level and best_pass is not None:
                break  # passes at the nearest feasible level are collected
            radius = float(radii[worker_id])
            if level == nearest_level and (
                fallback is None or radius > fallback[0]
            ):
                fallback = (radius, worker_id, level)
            if tree_distance_for_level(level) <= radii_tree_units[worker_id]:
                if best_pass is None or (
                    level == best_pass[2] and radius > best_pass[0]
                ):
                    best_pass = (radius, worker_id, level)
        chosen = best_pass if best_pass is not None else fallback
        if chosen is None:
            return None
        _, worker_id, level = chosen
        self._trie.remove(worker_id)
        return worker_id, level

    def release(self, worker_id: int, path: Path | None = None) -> None:
        """Return a previously consumed worker to the pool.

        Used by the case-study semantics where a failed assignment leaves
        the worker available. ``path`` defaults to the leaf the slot was
        admitted under (from the slot table); passing it explicitly keeps
        the historical call shape working.
        """
        if path is None:
            path = self.slot_path(worker_id)
        self._trie.insert(path, worker_id)


def _is_scalar(value) -> bool:
    try:
        len(value)
    except TypeError:
        return True
    return False
