"""The planar (polar) Laplace mechanism of Andrés et al. (CCS 2013).

This is the baseline privacy mechanism the paper compares against (Lap-GR,
Lap-HG, Prob all use it). It achieves ε-Geo-Indistinguishability in the
Euclidean plane by adding noise with density::

    p(z | x) = eps**2 / (2*pi) * exp(-eps * d(x, z))

Sampling uses the polar decomposition: the angle is uniform and the radius
follows CDF ``C(r) = 1 - (1 + eps*r) * exp(-eps*r)``, inverted in closed
form with the Lambert-W function (branch -1)::

    r = -(1/eps) * (W_{-1}((p - 1) / e) + 1),   p ~ U(0, 1)

An optional service region clamps the obfuscated point back into bounds — a
post-processing step that cannot weaken Geo-I.
"""

from __future__ import annotations

import numpy as np
from scipy.special import lambertw

from ..geometry.box import Box
from ..geometry.points import as_point, as_points, euclidean
from ..utils import ensure_rng

__all__ = ["PlanarLaplaceMechanism"]


class PlanarLaplaceMechanism:
    """ε-Geo-I location obfuscation in the Euclidean plane.

    Parameters
    ----------
    epsilon:
        Privacy budget per unit of Euclidean distance.
    region:
        Optional :class:`Box`; when given, obfuscated points are clamped
        back into the region (post-processing, privacy-preserving).
    seed:
        RNG used when a call does not pass its own.
    """

    def __init__(
        self,
        epsilon: float,
        region: Box | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.region = region
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    # densities                                                            #
    # ------------------------------------------------------------------ #

    def pdf(self, x, z) -> float:
        """Density of reporting ``z`` when the true location is ``x``."""
        eps = self.epsilon
        return eps**2 / (2.0 * np.pi) * float(np.exp(-eps * euclidean(x, z)))

    def radius_cdf(self, r) -> np.ndarray:
        """``P(R <= r)`` of the noise radius: ``1 - (1 + eps r) e^{-eps r}``."""
        r = np.asarray(r, dtype=np.float64)
        if np.any(r < 0):
            raise ValueError("radius must be non-negative")
        e = self.epsilon
        with np.errstate(under="ignore"):
            return 1.0 - (1.0 + e * r) * np.exp(-e * r)

    def inverse_radius_cdf(self, p) -> np.ndarray:
        """Closed-form inverse of :meth:`radius_cdf` via Lambert-W(-1)."""
        p = np.asarray(p, dtype=np.float64)
        if np.any((p < 0) | (p >= 1)):
            raise ValueError("p must lie in [0, 1)")
        # (p - 1)/e lies in [-1/e, 0); W_{-1} is real there but NaN at the
        # branch point itself (p = 0, where the radius is exactly 0).
        positive = p > 0.0
        out = np.zeros_like(p)
        if np.any(positive):
            w = lambertw((p[positive] - 1.0) / np.e, k=-1).real
            # Subnormal p can still round (p-1)/e onto the branch point,
            # where lambertw returns NaN; the limit there is W = -1 (r = 0).
            w = np.where(np.isnan(w), -1.0, w)
            out[positive] = -(w + 1.0) / self.epsilon
        return out

    @property
    def mean_radius(self) -> float:
        """Expected noise magnitude ``E[R] = 2 / eps``."""
        return 2.0 / self.epsilon

    # ------------------------------------------------------------------ #
    # sampling                                                             #
    # ------------------------------------------------------------------ #

    def obfuscate(self, x, rng=None) -> np.ndarray:
        """Report a noisy location for the single true location ``x``."""
        return self.obfuscate_many(as_point(x).reshape(1, 2), rng)[0]

    def obfuscate_many(self, xs, rng=None) -> np.ndarray:
        """Vectorized obfuscation of an ``(n, 2)`` array of locations."""
        pts = as_points(xs)
        rng = self._rng if rng is None else ensure_rng(rng)
        n = len(pts)
        if n == 0:
            return pts.copy()
        theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
        radius = self.inverse_radius_cdf(rng.random(n))
        noisy = pts + np.column_stack(
            [radius * np.cos(theta), radius * np.sin(theta)]
        )
        if self.region is not None:
            noisy = self.region.clamp(noisy)
        return noisy
