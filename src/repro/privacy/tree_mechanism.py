"""The paper's ε-Geo-Indistinguishable mechanism on a complete HST.

Three interchangeable samplers produce the *same* distribution (Theorem 2):

* :meth:`TreeMechanism.obfuscate_enumerate` — the reference Algorithm 2:
  enumerate all ``c**D`` leaves of the complete tree, weight each by its
  LCA level with the true leaf, sample once. Exponential; only allowed on
  small trees and used as ground truth in tests.
* :meth:`TreeMechanism.obfuscate_level` — a two-stage direct sampler:
  draw the LCA level from the per-level probabilities, then a uniform leaf
  of the sibling set ``L_i(x)``. ``O(D)``.
* :meth:`TreeMechanism.obfuscate_walk` — the paper's Algorithm 3 random
  walk: climb from the true leaf, at level ``i`` continue upward with
  probability ``pu_i``, on turning descend through a uniformly chosen
  non-returning child, then uniform children to a leaf. ``O(D)``.

The mechanism operates purely on leaf paths, so fake leaves (added to make
the tree complete) are legal outputs, exactly as in the paper's Example 3.
"""

from __future__ import annotations

import numpy as np

from ..hst.paths import Path, lca_level
from ..hst.tree import HST
from ..utils import ensure_rng
from .weights import TreeWeights

__all__ = ["TreeMechanism", "ENUMERATION_LEAF_LIMIT"]

#: Refuse to run Algorithm 2 on complete trees with more leaves than this.
ENUMERATION_LEAF_LIMIT = 2_000_000


class TreeMechanism:
    """ε-Geo-I obfuscation of HST leaves (paper Sec. III-C/D).

    Parameters
    ----------
    tree:
        The published complete HST.
    epsilon:
        Privacy budget, applied to tree-unit distances (Theorem 1 bounds
        ``M(x1)(z) <= exp(eps * dT(x1, x2)) * M(x2)(z)``).
    method:
        Default sampler for :meth:`obfuscate`: ``"walk"`` (Alg. 3,
        default), ``"level"`` (direct two-stage) or ``"enumerate"``
        (Alg. 2, small trees only).
    seed:
        RNG used when a call does not pass its own.
    """

    _METHODS = ("walk", "level", "enumerate")

    def __init__(
        self,
        tree: HST,
        epsilon: float,
        method: str = "walk",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if method not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {method!r}")
        self.tree = tree
        self.weights = TreeWeights.from_tree(tree, epsilon)
        self.method = method
        self._rng = ensure_rng(seed)
        self._cols = np.arange(tree.depth)

    @property
    def epsilon(self) -> float:
        return self.weights.epsilon

    # ------------------------------------------------------------------ #
    # exact probabilities                                                  #
    # ------------------------------------------------------------------ #

    def probability(self, x: Path, z: Path) -> float:
        """``M(x)(z)``: probability of obfuscating leaf ``x`` to leaf ``z``."""
        x = self.tree.validate_path(x)
        z = self.tree.validate_path(z)
        return self.weights.leaf_probability(lca_level(x, z))

    def distribution(self, x: Path) -> dict[Path, float]:
        """The full output distribution of Algorithm 2 for true leaf ``x``.

        Enumerates every leaf of the complete tree; guarded by
        :data:`ENUMERATION_LEAF_LIMIT`.
        """
        from ..hst.paths import enumerate_leaves

        self._check_enumerable()
        x = self.tree.validate_path(x)
        return {
            z: self.weights.leaf_probability(lca_level(x, z))
            for z in enumerate_leaves(self.tree.depth, self.tree.branching)
        }

    def expected_tree_distance(self, u: Path, v: Path) -> float:
        """Exact ``E[dT(u', v)]`` where ``u'`` is the obfuscation of ``u``.

        Unlike :meth:`distribution` this runs in ``O(D^2)`` by grouping the
        leaves by (LCA level with ``u``, LCA level with ``v``): used to
        check the Lemma 1/2 expectation bounds on full-size trees.
        """
        from ..hst.paths import tree_distance_for_level

        u = self.tree.validate_path(u)
        v = self.tree.validate_path(v)
        depth, c = self.tree.depth, self.tree.branching
        w = self.weights
        l_uv = lca_level(u, v)
        total = 0.0
        # Leaves z with lvl(u, z) = i > l_uv lie outside the (u, v) subtree,
        # so lvl(v, z) = i as well. Leaves with i < l_uv stay inside u's
        # side, so lvl(v, z) = l_uv. Leaves with i = l_uv split between v's
        # own subtree (distance stratified by lvl(v, z) = j < l_uv) and the
        # other c-2 sibling branches (distance = dT(level l_uv)).
        for i in range(depth + 1):
            p_leaf = w.leaf_probability(i)
            if i != l_uv:
                count = w.level_counts[i]
                dist_level = i if i > l_uv else l_uv
                total += p_leaf * count * tree_distance_for_level(dist_level)
                continue
            if l_uv == 0:
                # z == u == v: zero distance contribution.
                continue
            # i == l_uv > 0: the sibling set of u at this level.
            # v's own branch contains c**(l_uv - 1) of those leaves,
            # stratified by their LCA level with v.
            for j in range(l_uv):
                if j == 0:
                    inside = 1.0
                else:
                    inside = (c - 1) * float(c) ** (j - 1)
                total += p_leaf * inside * tree_distance_for_level(j)
            # the remaining (c-2) * c**(l_uv-1) leaves sit in sibling
            # branches of both u and v at level l_uv.
            others = (c - 2) * float(c) ** (l_uv - 1)
            if others > 0:
                total += p_leaf * others * tree_distance_for_level(l_uv)
        return total

    # ------------------------------------------------------------------ #
    # samplers                                                            #
    # ------------------------------------------------------------------ #

    def obfuscate(self, x: Path, rng=None) -> Path:
        """Obfuscate leaf ``x`` with the configured default sampler."""
        if self.method == "walk":
            return self.obfuscate_walk(x, rng)
        if self.method == "level":
            return self.obfuscate_level(x, rng)
        return self.obfuscate_enumerate(x, rng)

    def obfuscate_point(self, point_index: int, rng=None) -> Path:
        """Obfuscate the real leaf of predefined point ``point_index``."""
        return self.obfuscate(self.tree.path_of(point_index), rng)

    def obfuscate_many(self, xs, rng=None) -> list[Path]:
        """Obfuscate a sequence of leaf paths independently."""
        rng = self._resolve_rng(rng)
        return [self.obfuscate(x, rng) for x in xs]

    def obfuscate_batch(self, paths: np.ndarray, rng=None) -> np.ndarray:
        """Vectorized obfuscation of an ``(n, D)`` array of leaf paths.

        Samples every leaf's LCA level in one multinomial draw and builds
        all output paths with array operations — the same distribution as
        the per-leaf samplers (it is the level sampler, vectorized), at a
        fraction of the Python overhead. Pipelines use it to register
        10^4-10^5 workers at once, and :class:`~repro.service.shard
        .ShardServer` routes every single-event task submission through it
        as a batch of one — the hot path has exactly one sampler.
        """
        rng = self._resolve_rng(rng)
        paths = np.asarray(paths, dtype=np.int64)
        if paths.ndim != 2 or paths.shape[1] != self.tree.depth:
            raise ValueError(
                f"expected (n, {self.tree.depth}) paths, got {paths.shape}"
            )
        if paths.size and (
            paths.min() < 0 or paths.max() >= self.tree.branching
        ):
            raise ValueError("path entries outside [0, branching)")
        return self._obfuscate_rows(paths, rng)

    def _obfuscate_rows(self, paths: np.ndarray, rng) -> np.ndarray:
        """The batch sampler proper, on pre-validated ``(n, D)`` int64 rows.

        Single kernel behind both public batch entry points; the callers
        own validation so a batch of one (the per-task hot path) pays no
        redundant bound scans.
        """
        n = len(paths)
        depth, c = self.tree.depth, self.tree.branching
        out = paths.copy()
        if n == 0:
            return out
        if n == 1:
            # the per-task hot case: identical draws (rng.random(1), then
            # one rng.random((1, depth + 1)) block when the leaf moves) and
            # identical arithmetic as the vector branch below, with scalar
            # ops in place of gather/scatter — bit-for-bit the same output
            # for the same stream, at a fraction of the fixed cost
            level = int(
                np.searchsorted(self.weights.level_cdf, rng.random(1), "right")[0]
            )
            if level == 0:
                return out
            u = rng.random((1, depth + 1))[0]
            row = out[0]
            split = depth - level
            avoid = int(row[split])
            child = min(int(u[0] * (c - 1)), c - 2)
            if child >= avoid:
                child += 1
            row[split] = child
            for j in range(split + 1, depth):
                row[j] = min(int(u[j + 1] * c), c - 1)
            return out
        # level draw via the precomputed cdf: bit-identical to
        # rng.choice(depth + 1, size=n, p=level_probs) on the same stream,
        # minus choice's per-call p validation — which dominates at n = 1
        levels = np.searchsorted(
            self.weights.level_cdf, rng.random(n), side="right"
        )
        moved = levels > 0
        if not moved.any():
            return out
        idx = moved.nonzero()[0]
        split = depth - levels[idx]
        # one uniform block covers the turning child and the whole descent:
        # floor-scaling doubles is uniform to 2**-53 per draw and an order
        # of magnitude cheaper than per-call bounded-integer sampling (the
        # clip guards the measure-zero round-up at the top of the range)
        u = rng.random((len(idx), depth + 1))
        # non-returning child at the turning node: uniform over the other
        # c - 1 children (shift past the avoided index)
        avoid = out[idx, split]
        child = (u[:, 0] * (c - 1)).astype(np.int64)
        np.clip(child, 0, c - 2, out=child)
        child += child >= avoid
        out[idx, split] = child
        # uniform descent below the turn
        below = self._cols[None, :] > split[:, None]
        random_children = (u[:, 1:] * c).astype(np.int64)
        np.clip(random_children, 0, c - 1, out=random_children)
        rows = out[idx]
        rows[below] = random_children[below]
        out[idx] = rows
        return out

    def obfuscate_points_batch(self, point_indices, rng=None) -> np.ndarray:
        """Vectorized obfuscation of real leaves by predefined-point index.

        The registration *and* serving convenience: looks up the ``(n, D)``
        path rows for ``point_indices`` in one fancy-indexing step and
        hands them to the batch kernel, so the whole snap-to-report hot
        path stays in numpy. Rows coming out of :attr:`tree.paths
        <repro.hst.tree.HST.paths>` are valid by construction, so only the
        indices themselves get bounds-checked here.
        """
        idx = np.asarray(point_indices, dtype=np.intp)
        if idx.ndim != 1:
            raise ValueError(f"expected a 1-d index array, got shape {idx.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.tree.n_points):
            raise IndexError("point index out of range")
        return self._obfuscate_rows(
            self.tree.paths[idx], self._resolve_rng(rng)
        )

    def obfuscate_walk(self, x: Path, rng=None) -> Path:
        """Paper Algorithm 3: the O(D) random-walk sampler."""
        x = self.tree.validate_path(x)
        rng = self._resolve_rng(rng)
        depth, c = self.tree.depth, self.tree.branching
        pu = self.weights.pu

        # Walk upward from the leaf; at level i continue with prob pu[i].
        level = 0
        while rng.random() < pu[level]:
            level += 1
        if level == 0:
            # Turned around at the true leaf itself: report x unchanged.
            return x
        return self._descend(x, level, rng, depth, c)

    def obfuscate_level(self, x: Path, rng=None) -> Path:
        """Direct sampler: draw the LCA level, then a uniform sibling leaf."""
        x = self.tree.validate_path(x)
        rng = self._resolve_rng(rng)
        depth, c = self.tree.depth, self.tree.branching
        level = int(rng.choice(depth + 1, p=self.weights.level_probs))
        if level == 0:
            return x
        return self._descend(x, level, rng, depth, c)

    def obfuscate_enumerate(self, x: Path, rng=None) -> Path:
        """Paper Algorithm 2: enumerate all leaves and sample once.

        Exponential in ``D``; only allowed on small trees (tests, worked
        examples). Produces the same distribution as the other samplers.
        """
        self._check_enumerable()
        rng = self._resolve_rng(rng)
        dist = self.distribution(x)
        leaves = list(dist.keys())
        probs = np.fromiter(dist.values(), dtype=np.float64, count=len(leaves))
        idx = int(rng.choice(len(leaves), p=probs / probs.sum()))
        return leaves[idx]

    # ------------------------------------------------------------------ #
    # internals                                                           #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _descend(x: Path, level: int, rng, depth: int, c: int) -> Path:
        """Turn downward at ``level``: pick a uniform non-returning child,
        then uniform children to a leaf — a uniform member of ``L_level(x)``.
        """
        split = depth - level
        # child of the turning node that leads back toward x
        avoid = x[split]
        child = int(rng.integers(c - 1))
        if child >= avoid:
            child += 1
        out = list(x[:split])
        out.append(child)
        if level > 1:
            out.extend(int(v) for v in rng.integers(0, c, size=level - 1))
        return tuple(out)

    def _resolve_rng(self, rng) -> np.random.Generator:
        return self._rng if rng is None else ensure_rng(rng)

    def _check_enumerable(self) -> None:
        if self.tree.num_leaves > ENUMERATION_LEAF_LIMIT:
            raise ValueError(
                f"complete tree has {self.tree.num_leaves} leaves; "
                f"enumeration (Alg. 2) is limited to "
                f"{ENUMERATION_LEAF_LIMIT} — use the 'walk' sampler"
            )
