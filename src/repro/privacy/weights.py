"""Weight algebra of the tree mechanism (paper Eqs. 3, 4 and 7).

For a complete ``c``-ary HST of depth ``D`` and privacy budget ``epsilon``,
a leaf ``z`` whose LCA with the true leaf ``x`` sits at level ``i`` is
reported with probability ``wt_i / WT`` where::

    wt_0 = 1
    wt_i = exp(epsilon * (4 - 2**(i+2)))          # = exp(-eps * dT(level i))
    WT   = wt_0 + sum_{i=1}^{D} c**(i-1) * (c-1) * wt_i

The random-walk sampler additionally needs the suffix weights ``tw_k``
(Eq. 7) — the total weight of leaves whose LCA with ``x`` is at level >= k —
and the upward-step probabilities ``pu_i = tw_{i+1} / tw_i``.

All of these depend only on ``(epsilon, D, c)``, never on the specific leaf,
because the complete tree looks identical from every leaf. They are
precomputed once per mechanism instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..hst.paths import sibling_set_size, tree_distance_for_level

__all__ = ["TreeWeights"]


@dataclass(frozen=True)
class TreeWeights:
    """Precomputed per-level weights of the tree mechanism.

    Attributes
    ----------
    epsilon:
        Privacy budget applied to tree-unit distances.
    depth, branching:
        ``D`` and ``c`` of the complete HST.
    wt:
        ``(D+1,)`` per-leaf weight at each LCA level (Eq. 3 numerators).
    level_counts:
        ``(D+1,)`` sibling-set sizes ``|L_i(x)|`` as float64.
    total_weight:
        ``WT`` (Eq. 4).
    level_probs:
        ``(D+1,)`` probability that the obfuscated leaf's LCA with the true
        leaf is at each level; sums to 1.
    tw:
        ``(D+2,)`` suffix weights (Eq. 7), with ``tw[D+1] = 0``.
    pu:
        ``(D+1,)`` probability of continuing the walk upward at each level
        (``pu[D] = 0``: the walk must turn at the root).
    """

    epsilon: float
    depth: int
    branching: int
    wt: np.ndarray
    level_counts: np.ndarray
    total_weight: float
    level_probs: np.ndarray
    tw: np.ndarray
    pu: np.ndarray

    @classmethod
    def compute(cls, epsilon: float, depth: int, branching: int) -> "TreeWeights":
        """Evaluate Eqs. 3, 4 and 7 for ``(epsilon, depth, branching)``."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if branching < 1:
            raise ValueError(f"branching must be >= 1, got {branching}")

        levels = np.arange(depth + 1)
        distances = np.array(
            [tree_distance_for_level(int(i)) for i in levels], dtype=np.float64
        )
        # wt_i = exp(eps * (4 - 2**(i+2))) = exp(-eps * dT(i)); wt_0 = 1.
        # Deep levels underflow to 0.0, which is the correct limit.
        with np.errstate(under="ignore"):
            wt = np.exp(-epsilon * distances)
        counts = np.array(
            [sibling_set_size(int(i), branching) for i in levels],
            dtype=np.float64,
        )
        with np.errstate(under="ignore"):
            level_weight = counts * wt
        total = float(level_weight.sum())
        level_probs = level_weight / total

        # tw[k] = sum_{i >= k} |L_i| * wt_i, with tw[D+1] = 0 (Eq. 7).
        tw = np.zeros(depth + 2, dtype=np.float64)
        tw[: depth + 1] = level_weight[::-1].cumsum()[::-1]

        # pu[i] = tw[i+1] / tw[i]; define 0/0 := 0 (once the remaining
        # suffix weight underflows to zero the walk can never be there).
        with np.errstate(invalid="ignore", divide="ignore"):
            pu = np.where(tw[:-1] > 0.0, tw[1:] / tw[:-1], 0.0)

        return cls(
            epsilon=float(epsilon),
            depth=depth,
            branching=branching,
            wt=wt,
            level_counts=counts,
            total_weight=total,
            level_probs=level_probs,
            tw=tw,
            pu=pu,
        )

    @classmethod
    def from_tree(cls, tree, epsilon: float) -> "TreeWeights":
        """Convenience constructor reading ``(D, c)`` from an :class:`HST`."""
        return cls.compute(epsilon, tree.depth, tree.branching)

    # ------------------------------------------------------------------ #
    # derived quantities                                                  #
    # ------------------------------------------------------------------ #

    def leaf_probability(self, level: int) -> float:
        """``M(x)(z)`` for any single leaf ``z`` with ``lvl(x, z) = level``."""
        if not 0 <= level <= self.depth:
            raise IndexError(f"level {level} outside [0, {self.depth}]")
        return float(self.wt[level] / self.total_weight)

    @cached_property
    def stay_probability(self) -> float:
        """Probability the mechanism reports the true leaf unchanged."""
        return self.leaf_probability(0)

    @cached_property
    def level_cdf(self) -> np.ndarray:
        """``(D+1,)`` cumulative level distribution, normalised exactly as
        ``Generator.choice(p=level_probs)`` normalises it internally — so
        ``searchsorted(level_cdf, rng.random(n), side="right")`` draws the
        same levels from the same stream, without choice's per-call
        validation overhead. This is the batch sampler's hot lookup table.
        """
        cdf = self.level_probs.cumsum()
        cdf /= cdf[-1]
        return cdf

    @cached_property
    def expected_displacement(self) -> float:
        """Expected tree distance between the true and obfuscated leaf."""
        distances = np.array(
            [tree_distance_for_level(i) for i in range(self.depth + 1)],
            dtype=np.float64,
        )
        return float((self.level_probs * distances).sum())

    def __post_init__(self) -> None:
        for name in ("wt", "level_counts", "level_probs"):
            arr = getattr(self, name)
            if arr.shape != (self.depth + 1,):
                raise ValueError(f"{name} must have shape ({self.depth + 1},)")
        if self.tw.shape != (self.depth + 2,):
            raise ValueError("tw must have shape (depth + 2,)")
        if self.pu.shape != (self.depth + 1,):
            raise ValueError("pu must have shape (depth + 1,)")
