"""Bayesian localization attack: empirical privacy of the mechanisms.

ε-Geo-I bounds the *likelihood ratio* an adversary can extract from one
report; what a platform operator actually cares about is how well an
optimal adversary can localize a user. This module implements the standard
evaluation (Shokri et al.-style): an adversary with a public prior over
the predefined points observes one obfuscated report and forms the exact
Bayesian posterior; we score

* the **expected localization error** of the posterior-mean/MAP estimate
  (higher = more private), and
* the **posterior concentration** (probability mass the adversary can put
  on the true point).

Both mechanisms are evaluated on the same discrete domain — the tree
mechanism natively (its likelihoods are the closed-form level weights),
and planar Laplace by its density at the predefined points — making the
comparison apples-to-apples. An extension beyond the paper, which proves
the Geo-I bound but never measures realized adversarial error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.points import distances_to
from ..hst.paths import Path, lca_level
from ..hst.tree import HST
from ..privacy.laplace import PlanarLaplaceMechanism
from ..privacy.tree_mechanism import TreeMechanism
from ..utils import ensure_rng

__all__ = [
    "AttackReport",
    "tree_posterior",
    "laplace_posterior",
    "evaluate_tree_attack",
    "evaluate_laplace_attack",
]


@dataclass(frozen=True)
class AttackReport:
    """Averaged adversarial performance over sampled reports.

    ``mean_error`` is the adversary's expected Euclidean localization
    error (MAP estimate vs true point); ``mean_true_mass`` the posterior
    probability assigned to the true point; ``top1_accuracy`` how often
    the MAP estimate *is* the true point.
    """

    mechanism: str
    epsilon: float
    n_trials: int
    mean_error: float
    mean_true_mass: float
    top1_accuracy: float


def tree_posterior(
    mechanism: TreeMechanism, observed: Path, prior: np.ndarray | None = None
) -> np.ndarray:
    """Exact posterior over predefined points given one tree report.

    ``P(x_i | z) ∝ prior_i * wt_{lvl(x_i, z)}`` — the likelihood is the
    closed-form per-leaf weight, so this is the *optimal* attacker.
    """
    tree = mechanism.tree
    n = tree.n_points
    prior = _normalize_prior(prior, n)
    observed = tree.validate_path(observed)
    likelihood = np.array(
        [
            mechanism.weights.wt[lca_level(tree.path_of(i), observed)]
            for i in range(n)
        ]
    )
    joint = prior * likelihood
    total = joint.sum()
    if total <= 0:
        # all likelihoods underflowed: the observation carries no usable
        # information; the posterior is the prior
        return prior.copy()
    return joint / total


def laplace_posterior(
    mechanism: PlanarLaplaceMechanism,
    points: np.ndarray,
    observed,
    prior: np.ndarray | None = None,
) -> np.ndarray:
    """Posterior over a discrete point domain given one noisy coordinate.

    ``P(x_i | z) ∝ prior_i * exp(-eps * d(x_i, z))`` (the planar Laplace
    density up to constants).
    """
    n = len(points)
    prior = _normalize_prior(prior, n)
    with np.errstate(under="ignore"):
        likelihood = np.exp(-mechanism.epsilon * distances_to(points, observed))
    joint = prior * likelihood
    total = joint.sum()
    if total <= 0:
        return prior.copy()
    return joint / total


def evaluate_tree_attack(
    tree: HST,
    epsilon: float,
    n_trials: int = 200,
    prior: np.ndarray | None = None,
    seed=None,
) -> AttackReport:
    """Run the optimal Bayesian attack against the tree mechanism.

    True points are drawn from the prior; each is obfuscated once and
    attacked; errors are averaged.
    """
    rng = ensure_rng(seed)
    mechanism = TreeMechanism(tree, epsilon)
    prior_arr = _normalize_prior(prior, tree.n_points)
    errors, masses, hits = [], [], 0
    for _ in range(n_trials):
        true_idx = int(rng.choice(tree.n_points, p=prior_arr))
        report = mechanism.obfuscate_walk(tree.path_of(true_idx), rng)
        posterior = tree_posterior(mechanism, report, prior_arr)
        guess = int(np.argmax(posterior))
        errors.append(
            float(np.hypot(*(tree.points[guess] - tree.points[true_idx])))
        )
        masses.append(float(posterior[true_idx]))
        hits += guess == true_idx
    return AttackReport(
        mechanism="tree",
        epsilon=float(epsilon),
        n_trials=n_trials,
        mean_error=float(np.mean(errors)),
        mean_true_mass=float(np.mean(masses)),
        top1_accuracy=hits / n_trials,
    )


def evaluate_laplace_attack(
    points,
    epsilon: float,
    n_trials: int = 200,
    prior: np.ndarray | None = None,
    seed=None,
) -> AttackReport:
    """Run the Bayesian attack against planar Laplace on the same domain."""
    pts = np.asarray(points, dtype=np.float64)
    rng = ensure_rng(seed)
    mechanism = PlanarLaplaceMechanism(epsilon)
    prior_arr = _normalize_prior(prior, len(pts))
    errors, masses, hits = [], [], 0
    for _ in range(n_trials):
        true_idx = int(rng.choice(len(pts), p=prior_arr))
        report = mechanism.obfuscate(pts[true_idx], rng)
        posterior = laplace_posterior(mechanism, pts, report, prior_arr)
        guess = int(np.argmax(posterior))
        errors.append(float(np.hypot(*(pts[guess] - pts[true_idx]))))
        masses.append(float(posterior[true_idx]))
        hits += guess == true_idx
    return AttackReport(
        mechanism="laplace",
        epsilon=float(epsilon),
        n_trials=n_trials,
        mean_error=float(np.mean(errors)),
        mean_true_mass=float(np.mean(masses)),
        top1_accuracy=hits / n_trials,
    )


def _normalize_prior(prior, n: int) -> np.ndarray:
    if prior is None:
        return np.full(n, 1.0 / n)
    arr = np.asarray(prior, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"prior must have shape ({n},), got {arr.shape}")
    if np.any(arr < 0):
        raise ValueError("prior must be non-negative")
    total = arr.sum()
    if total <= 0:
        raise ValueError("prior must have positive mass")
    return arr / total
