"""Privacy mechanisms and Geo-Indistinguishability auditing."""

from .analysis import (
    DisplacementProfile,
    compare_mechanisms,
    empirical_displacement,
    laplace_displacement_profile,
    tree_displacement_profile,
)
from .attack import (
    AttackReport,
    evaluate_laplace_attack,
    evaluate_tree_attack,
    laplace_posterior,
    tree_posterior,
)
from .audit import (
    GeoIReport,
    expectation_bound_report,
    lemma1_lower_bound_factor,
    sampler_total_variation,
    verify_laplace_geo_i,
    verify_tree_geo_i,
)
from .bounds import lemma2_upper_factor, theorem3_competitive_bound
from .budget import BudgetExceededError, PrivacyBudgetLedger
from .laplace import PlanarLaplaceMechanism
from .psd import GeocastRegion, NoisyQuadtree
from .tree_mechanism import ENUMERATION_LEAF_LIMIT, TreeMechanism
from .weights import TreeWeights

__all__ = [
    "ENUMERATION_LEAF_LIMIT",
    "AttackReport",
    "BudgetExceededError",
    "evaluate_laplace_attack",
    "evaluate_tree_attack",
    "laplace_posterior",
    "tree_posterior",
    "DisplacementProfile",
    "compare_mechanisms",
    "empirical_displacement",
    "laplace_displacement_profile",
    "tree_displacement_profile",
    "GeoIReport",
    "GeocastRegion",
    "NoisyQuadtree",
    "PlanarLaplaceMechanism",
    "PrivacyBudgetLedger",
    "TreeMechanism",
    "TreeWeights",
    "expectation_bound_report",
    "lemma1_lower_bound_factor",
    "lemma2_upper_factor",
    "theorem3_competitive_bound",
    "sampler_total_variation",
    "verify_laplace_geo_i",
    "verify_tree_geo_i",
]
