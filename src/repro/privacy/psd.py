"""Private Spatial Decomposition (To et al., PVLDB 2014 — paper ref. [5]).

The paper's related work contrasts its per-location Geo-I mechanisms with
the *aggregate* differential-privacy line: To et al. protect workers by
publishing only Laplace-noised **counts** of workers per cell of a spatial
decomposition (Cormode et al.'s PSD, ICDE 2012), and geocast each task to
a region whose noisy count promises enough workers. No individual location
is ever released, so the guarantee is classic ε-DP over the worker set
rather than Geo-I per report.

We implement the standard recipe:

* a complete quadtree of fixed height over the service region;
* the privacy budget split geometrically across levels (each level's
  counts get an independent Laplace(1/ε_level) perturbation; by parallel
  composition cells of one level share ε_level, and sequential composition
  across levels sums to ε);
* a geocast query: grow a cell neighbourhood around the task until the
  noisy count reaches a target, then hand the region to the matcher.

This powers the ``PSD-GR`` ablation pipeline: geocast region selection on
noisy counts + greedy assignment *within* the region (the worker that
would accept the geocast). It is not one of the paper's three compared
algorithms, but it is the natural representative of the aggregate-DP
family the paper argues is "unfit for queries on individual locations" —
the ablation quantifies that claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.box import Box
from ..geometry.points import as_points
from ..utils import ensure_rng

__all__ = ["NoisyQuadtree", "GeocastRegion"]


@dataclass(frozen=True)
class GeocastRegion:
    """Result of a geocast query: selected cells and their noisy count."""

    cells: tuple[tuple[int, int], ...]
    noisy_count: float
    level: int


class NoisyQuadtree:
    """Fixed-height quadtree with ε-DP per-cell worker counts.

    Parameters
    ----------
    region:
        The service region.
    worker_locations:
        True worker coordinates — consumed once to form counts; only the
        noisy counts are retained (the DP interface boundary).
    epsilon:
        Total privacy budget for the structure.
    height:
        Quadtree height; level ``h`` has ``2^h x 2^h`` cells. Default 6
        (64 x 64 at the finest level).
    budget_ratio:
        Geometric split of ``epsilon`` across levels, finest level getting
        the largest share (Cormode et al. recommend geometric splits).
    """

    def __init__(
        self,
        region: Box,
        worker_locations,
        epsilon: float,
        height: int = 6,
        budget_ratio: float = 2.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if height < 1:
            raise ValueError(f"height must be >= 1, got {height}")
        if budget_ratio <= 0:
            raise ValueError(f"budget_ratio must be positive, got {budget_ratio}")
        self.region = region
        self.epsilon = float(epsilon)
        self.height = height
        rng = ensure_rng(seed)
        locations = as_points(worker_locations)

        # geometric budget split: eps_level ~ ratio^level, normalized
        weights = np.array([budget_ratio**lvl for lvl in range(height + 1)])
        self._level_epsilon = epsilon * weights / weights.sum()

        self._noisy_counts: list[np.ndarray] = []
        for level in range(height + 1):
            cells = 2**level
            counts = self._histogram(locations, cells)
            scale = 1.0 / self._level_epsilon[level]
            noisy = counts + rng.laplace(0.0, scale, size=counts.shape)
            self._noisy_counts.append(noisy)

    # ------------------------------------------------------------------ #
    # structure                                                            #
    # ------------------------------------------------------------------ #

    def cells_at(self, level: int) -> int:
        """Cells per axis at ``level``."""
        self._check_level(level)
        return 2**level

    def level_epsilon(self, level: int) -> float:
        """Budget share spent on ``level``'s counts."""
        self._check_level(level)
        return float(self._level_epsilon[level])

    def noisy_count(self, level: int, ix: int, iy: int) -> float:
        """Published noisy worker count of one cell."""
        self._check_level(level)
        return float(self._noisy_counts[level][ix, iy])

    def cell_of(self, location, level: int) -> tuple[int, int]:
        """Cell indices containing ``location`` at ``level``."""
        self._check_level(level)
        cells = 2**level
        x, y = float(location[0]), float(location[1])
        ix = int((x - self.region.xmin) / self.region.width * cells)
        iy = int((y - self.region.ymin) / self.region.height * cells)
        return min(max(ix, 0), cells - 1), min(max(iy, 0), cells - 1)

    def cell_box(self, level: int, ix: int, iy: int) -> Box:
        """Geometry of one cell."""
        cells = self.cells_at(level)
        w = self.region.width / cells
        h = self.region.height / cells
        return Box(
            self.region.xmin + ix * w,
            self.region.ymin + iy * h,
            self.region.xmin + (ix + 1) * w,
            self.region.ymin + (iy + 1) * h,
        )

    # ------------------------------------------------------------------ #
    # geocast                                                              #
    # ------------------------------------------------------------------ #

    def geocast(self, task_location, target_count: float = 1.0) -> GeocastRegion:
        """Select a region around the task with enough expected workers.

        Starting from the finest cell containing the task, rings of
        neighbouring cells are added (then coarser levels tried) until the
        summed noisy count reaches ``target_count``. Uses only published
        noisy counts — no further privacy cost (post-processing).
        """
        if target_count <= 0:
            raise ValueError("target_count must be positive")
        level = self.height
        cells = self.cells_at(level)
        cx, cy = self.cell_of(task_location, level)
        chosen: list[tuple[int, int]] = []
        total = 0.0
        for ring in range(cells):
            added = False
            for ix in range(max(0, cx - ring), min(cells, cx + ring + 1)):
                for iy in range(max(0, cy - ring), min(cells, cy + ring + 1)):
                    if max(abs(ix - cx), abs(iy - cy)) != ring:
                        continue
                    chosen.append((ix, iy))
                    total += self.noisy_count(level, ix, iy)
                    added = True
            if total >= target_count:
                return GeocastRegion(
                    cells=tuple(chosen), noisy_count=total, level=level
                )
            if not added and ring > 0:
                break
        # the whole grid never reached the target: return everything
        return GeocastRegion(cells=tuple(chosen), noisy_count=total, level=level)

    def region_contains(self, geocast: GeocastRegion, location) -> bool:
        """Whether a location falls inside a geocast region."""
        cell = self.cell_of(location, geocast.level)
        return cell in set(geocast.cells)

    # ------------------------------------------------------------------ #
    # internals                                                            #
    # ------------------------------------------------------------------ #

    def _histogram(self, locations: np.ndarray, cells: int) -> np.ndarray:
        if len(locations) == 0:
            return np.zeros((cells, cells))
        hist, _, _ = np.histogram2d(
            locations[:, 0],
            locations[:, 1],
            bins=cells,
            range=[
                [self.region.xmin, self.region.xmax],
                [self.region.ymin, self.region.ymax],
            ],
        )
        return hist

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.height:
            raise IndexError(f"level {level} outside [0, {self.height}]")
