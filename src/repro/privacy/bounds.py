"""Closed-form evaluation of the paper's theoretical bounds.

These are the constants the analysis section derives; having them as code
lets the ablation benches print the guarantee next to the realized value:

* Lemma 1 lower bound factor ``1 / (3(2c - 1))`` (re-exported from
  :mod:`repro.privacy.audit`).
* Lemma 2 upper bound factor ``O((ln 2c / eps)^{log2 2c})``.
* Theorem 3 competitive ratio ``O((ln 2c / eps)^{2 log2 2c} log N log^2 k)``,
  which for the binary-HST case the paper quotes as
  ``O(1/eps^4 * log N * log^2 k)``.

Big-O constants are set to 1 — the *shape* in (eps, N, k) is the claim
worth comparing against measurements, not the constant.
"""

from __future__ import annotations

import math

__all__ = [
    "lemma2_upper_factor",
    "theorem3_competitive_bound",
]


def lemma2_upper_factor(epsilon: float, branching: int = 2) -> float:
    """Lemma 2's expectation expansion bound ``(ln 2c / eps)^{log2 2c}``.

    The factor by which obfuscation can inflate expected tree distances;
    with ``c = 2`` it behaves like ``1/eps^2``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if branching < 1:
        raise ValueError(f"branching must be >= 1, got {branching}")
    base = math.log(2 * branching) / epsilon
    return max(1.0, base) ** math.log2(2 * branching)


def theorem3_competitive_bound(
    epsilon: float, n_points: int, matching_size: int, branching: int = 2
) -> float:
    """Theorem 3's competitive ratio (unit big-O constant).

    ``(ln 2c / eps)^{2 log2 2c} * log2 N * log2^2 k`` — the paper states
    the binary case ``c = 2``, giving the quoted
    ``O(1/eps^4 log N log^2 k)``.
    """
    if n_points < 1 or matching_size < 1:
        raise ValueError("n_points and matching_size must be >= 1")
    log_n = max(1.0, math.log2(n_points))
    log_k = max(1.0, math.log2(matching_size))
    return lemma2_upper_factor(epsilon, branching) ** 2 * log_n * log_k**2
