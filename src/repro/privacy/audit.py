"""Verification of the paper's privacy and utility claims.

These tools turn the paper's theorems into executable checks:

* **Theorem 1** (the tree mechanism is ε-Geo-I under the tree metric):
  :func:`verify_tree_geo_i` checks the inequality
  ``M(x1)(z) <= exp(eps * dT(x1, x2)) * M(x2)(z)`` *exactly*, because the
  mechanism's probabilities are available in closed form.
* **Theorem 2** (the random walk samples the Algorithm 2 distribution):
  :func:`sampler_total_variation` estimates the TV distance between a
  sampler's empirical distribution and the exact one.
* **Lemmas 1/2** (expectation bounds that drive the competitive ratio):
  :func:`expectation_bound_report` evaluates ``E[dT(u', v)]`` exactly and
  compares it against the Lemma 1 lower bound.
* The planar Laplace baseline's Geo-I follows from its density ratio;
  :func:`verify_laplace_geo_i` checks it on sampled triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..geometry.points import euclidean
from ..hst.paths import Path, lca_level, tree_distance
from ..utils import ensure_rng
from .laplace import PlanarLaplaceMechanism
from .tree_mechanism import TreeMechanism

__all__ = [
    "GeoIReport",
    "verify_tree_geo_i",
    "verify_laplace_geo_i",
    "sampler_total_variation",
    "expectation_bound_report",
    "lemma1_lower_bound_factor",
]


@dataclass(frozen=True)
class GeoIReport:
    """Outcome of a Geo-Indistinguishability audit.

    ``max_excess`` is the largest value of
    ``log(M(x1)(z) / M(x2)(z)) - eps * d(x1, x2)`` observed; the mechanism
    satisfies ε-Geo-I on the audited triples iff it is <= 0 (up to float
    round-off, exposed via :meth:`holds`).
    """

    epsilon: float
    triples_checked: int
    max_excess: float

    def holds(self, tol: float = 1e-9) -> bool:
        return self.max_excess <= tol


def verify_tree_geo_i(
    mechanism: TreeMechanism,
    leaves: list[Path] | None = None,
    max_pairs: int | None = None,
    seed=None,
) -> GeoIReport:
    """Exact Theorem 1 audit of the tree mechanism.

    For every pair ``(x1, x2)`` of the given leaves, the worst ratio over
    output leaves ``z`` is attained at ``z`` in the subtree of ``x1``
    below ``lca(x1, x2)`` (where ``M(x1)(z)`` is maximal and ``M(x2)(z)``
    minimal), but we do not rely on that: the ratio
    ``wt[lvl(x1,z)] / wt[lvl(x2,z)]`` only depends on the two LCA levels,
    and for a fixed pair only ``O(D^2)`` level combinations are feasible.
    We check them all by evaluating the ratio at ``z`` ranging over the
    *real* leaves plus the pair's own sibling structure — sufficient
    because weights are level-functions.
    """
    tree = mechanism.tree
    if leaves is None:
        leaves = [tree.path_of(i) for i in range(tree.n_points)]
    pairs = list(combinations(range(len(leaves)), 2))
    if max_pairs is not None and len(pairs) > max_pairs:
        rng = ensure_rng(seed)
        chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[int(i)] for i in chosen]

    eps = mechanism.epsilon
    depth = tree.depth
    # log wt_i = -eps * dT(level i) exactly (Eq. 3); using the analytic
    # form keeps the audit immune to float underflow of deep weights.
    from ..hst.paths import tree_distance_for_level

    log_wt = np.array(
        [-eps * tree_distance_for_level(i) for i in range(depth + 1)]
    )
    max_excess = -np.inf
    checked = 0
    for a, b in pairs:
        x1, x2 = leaves[a], leaves[b]
        d12 = tree_distance(x1, x2)
        l12 = lca_level(x1, x2)
        # Feasible (lvl(x1,z), lvl(x2,z)) combinations — see Theorem 1's
        # case analysis: either both levels equal some i > l12, or both
        # are <= l12 with at least one equal to l12, or one is < l12 and
        # the other exactly l12.
        level_pairs = {(i, i) for i in range(l12 + 1, depth + 1)}
        for i in range(l12 + 1):
            level_pairs.add((i, l12))
            level_pairs.add((l12, i))
        for l1, l2 in level_pairs:
            excess = (log_wt[l1] - log_wt[l2]) - eps * d12
            max_excess = max(max_excess, float(excess))
            checked += 1
    return GeoIReport(epsilon=eps, triples_checked=checked, max_excess=max_excess)


def verify_laplace_geo_i(
    mechanism: PlanarLaplaceMechanism,
    points,
    n_outputs: int = 32,
    seed=None,
) -> GeoIReport:
    """Density-ratio audit of the planar Laplace mechanism.

    Checks ``log pdf(z|x1) - log pdf(z|x2) <= eps * d(x1, x2)`` on all
    pairs from ``points`` against ``n_outputs`` random output locations —
    exact up to the triangle inequality, so any positive excess signals a
    bug rather than sampling noise.
    """
    pts = np.asarray(points, dtype=np.float64)
    rng = ensure_rng(seed)
    span = pts.max(axis=0) - pts.min(axis=0) + 1.0
    outputs = pts.min(axis=0) + rng.random((n_outputs, 2)) * span
    eps = mechanism.epsilon
    max_excess = -np.inf
    checked = 0
    for a, b in combinations(range(len(pts)), 2):
        d12 = euclidean(pts[a], pts[b])
        for z in outputs:
            log_ratio = eps * (euclidean(pts[b], z) - euclidean(pts[a], z))
            max_excess = max(max_excess, float(log_ratio - eps * d12))
            checked += 1
    return GeoIReport(epsilon=eps, triples_checked=checked, max_excess=max_excess)


def sampler_total_variation(
    mechanism: TreeMechanism,
    x: Path,
    n_samples: int = 20_000,
    method: str = "walk",
    seed=None,
) -> float:
    """Empirical TV distance between a sampler and the exact distribution.

    Used to validate Theorem 2 (the random walk realizes Algorithm 2's
    distribution); requires an enumerable tree.
    """
    exact = mechanism.distribution(x)
    rng = ensure_rng(seed)
    sampler = {
        "walk": mechanism.obfuscate_walk,
        "level": mechanism.obfuscate_level,
        "enumerate": mechanism.obfuscate_enumerate,
    }[method]
    counts: dict[Path, int] = {}
    for _ in range(n_samples):
        z = sampler(x, rng)
        counts[z] = counts.get(z, 0) + 1
    tv = 0.0
    for leaf, p in exact.items():
        tv += abs(counts.get(leaf, 0) / n_samples - p)
    # leaves sampled but not enumerated would be a structural bug
    extra = set(counts) - set(exact)
    if extra:
        raise AssertionError(f"sampler produced non-tree leaves: {sorted(extra)[:3]}")
    return 0.5 * tv


def lemma1_lower_bound_factor(branching: int) -> float:
    """Lemma 1's constant: ``1 / (3 * (2c - 1))``."""
    if branching < 1:
        raise ValueError(f"branching must be >= 1, got {branching}")
    return 1.0 / (3.0 * (2.0 * branching - 1.0))


def expectation_bound_report(
    mechanism: TreeMechanism, u: Path, v: Path
) -> dict[str, float]:
    """Evaluate the Lemma 1 bound for one leaf pair.

    Returns the exact expectation ``E[dT(u', v)]``, the true distance
    ``dT(u, v)``, the Lemma 1 lower bound and the realized expansion factor
    ``E[dT(u', v)] / dT(u, v)`` (``inf`` when ``u == v``).
    """
    d_uv = tree_distance(tuple(u), tuple(v))
    expectation = mechanism.expected_tree_distance(u, v)
    lower = lemma1_lower_bound_factor(mechanism.tree.branching) * d_uv
    factor = expectation / d_uv if d_uv > 0 else float("inf")
    return {
        "distance": float(d_uv),
        "expectation": expectation,
        "lemma1_lower_bound": lower,
        "expansion_factor": factor,
    }


