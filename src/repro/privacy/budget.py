"""Privacy budget accounting for repeated location reports.

The paper analyses a single report per user. In deployments workers
re-report as they move, and under sequential composition each
ε-Geo-Indistinguishable report spends ε of a cumulative budget. This
module provides the ledger a client (or an auditor) uses to enforce a cap:
an extension beyond the paper, but a prerequisite for real adoption of
either mechanism.

Composition note: Geo-I composes additively over *independent* mechanism
invocations on the same datum — reporting twice with budgets ε1 and ε2 is
(ε1+ε2)-Geo-I against an adversary seeing both reports. The ledger tracks
exactly that sum per principal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BudgetExceededError", "PrivacyBudgetLedger"]


class BudgetExceededError(RuntimeError):
    """Raised when a spend would push a principal past its budget cap."""


@dataclass
class PrivacyBudgetLedger:
    """Per-principal cumulative epsilon tracker with a hard cap.

    Parameters
    ----------
    capacity:
        Maximum cumulative epsilon any principal may spend.
    """

    capacity: float
    _spent: dict[object, float] = field(default_factory=dict, repr=False)
    _history: list[tuple[object, float]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    def spent(self, principal) -> float:
        """Cumulative epsilon already spent by ``principal``."""
        return self._spent.get(principal, 0.0)

    def remaining(self, principal) -> float:
        """Budget left before ``principal`` hits the cap."""
        return self.capacity - self.spent(principal)

    def can_spend(self, principal, epsilon: float) -> bool:
        """Whether a further ``epsilon`` spend fits under the cap."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        return self.spent(principal) + epsilon <= self.capacity + 1e-12

    def spend(self, principal, epsilon: float) -> float:
        """Record an ``epsilon`` spend; returns the new cumulative total.

        Raises :class:`BudgetExceededError` (and records nothing) when the
        spend would exceed the cap — callers should check
        :meth:`can_spend` first on hot paths.
        """
        if not self.can_spend(principal, epsilon):
            raise BudgetExceededError(
                f"principal {principal!r} has {self.remaining(principal):.3f} "
                f"of {self.capacity} left; cannot spend {epsilon}"
            )
        new_total = self.spent(principal) + epsilon
        self._spent[principal] = new_total
        self._history.append((principal, epsilon))
        return new_total

    def spend_batch(self, principals, epsilon: float) -> None:
        """Record the same ``epsilon`` spend for a whole cohort at once.

        The batched obfuscation path registers thousands of workers per
        call; this is its accounting mirror. All-or-nothing: if *any*
        principal would blow its cap the whole batch is rejected and
        nothing is recorded, so the ledger can never drift out of sync
        with a half-applied cohort.
        """
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        principals = list(principals)
        # count multiplicity so a principal repeated within the batch is
        # checked against its *total* batch spend, not the pre-batch state
        counts: dict[object, int] = {}
        for p in principals:
            counts[p] = counts.get(p, 0) + 1
        for p, k in counts.items():
            if self.spent(p) + k * epsilon > self.capacity + 1e-12:
                raise BudgetExceededError(
                    f"principal {p!r} has {self.remaining(p):.3f} of "
                    f"{self.capacity} left; cannot spend {k} x {epsilon} "
                    f"(batch of {len(principals)} rejected)"
                )
        for p in principals:
            self._spent[p] = self.spent(p) + epsilon
            self._history.append((p, epsilon))

    @property
    def history(self) -> list[tuple[object, float]]:
        """All recorded spends in order, as ``(principal, epsilon)``."""
        return list(self._history)

    @property
    def principals(self) -> int:
        """Number of principals with at least one recorded spend."""
        return len(self._spent)

    def total_spent(self) -> float:
        """Sum of all spends across principals (for dashboards)."""
        return sum(self._spent.values())

    def min_remaining(self) -> float:
        """Smallest remaining budget over all known principals.

        The auditor's headline number: how close the most-exposed user is
        to the cap. ``capacity`` when nobody has spent yet.
        """
        if not self._spent:
            return self.capacity
        return self.capacity - max(self._spent.values())

    def mean_remaining(self) -> float:
        """Average remaining budget over all known principals."""
        if not self._spent:
            return self.capacity
        return self.capacity - sum(self._spent.values()) / len(self._spent)

    # ------------------------------------------------------------------ #
    # serialization                                                       #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-ready export of the full ledger (audits, shard snapshots).

        Balances and history are emitted as ``[principal, epsilon]`` pairs
        rather than a mapping so integer principals survive a JSON
        round-trip (JSON object keys are always strings).
        """
        return {
            "capacity": self.capacity,
            "spent": [[p, v] for p, v in self._spent.items()],
            "history": [[p, e] for p, e in self._history],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PrivacyBudgetLedger":
        """Rebuild a ledger exported by :meth:`to_dict`; validates totals."""
        if not isinstance(payload, dict):
            raise ValueError("ledger payload must be a dict")
        missing = {"capacity", "spent", "history"} - set(payload)
        if missing:
            raise ValueError(f"ledger payload missing fields: {sorted(missing)}")
        ledger = cls(float(payload["capacity"]))
        for entry in payload["spent"]:
            principal, value = entry
            value = float(value)
            if value <= 0 or value > ledger.capacity + 1e-12:
                raise ValueError(
                    f"spent balance {value} for {principal!r} outside "
                    f"(0, {ledger.capacity}]"
                )
            ledger._spent[principal] = value
        ledger._history = [(p, float(e)) for p, e in payload["history"]]
        totals: dict[object, float] = {}
        for p, e in ledger._history:
            totals[p] = totals.get(p, 0.0) + e
        for p in set(totals) | set(ledger._spent):
            if abs(totals.get(p, 0.0) - ledger._spent.get(p, 0.0)) > 1e-9:
                raise ValueError(
                    f"ledger history sums to {totals.get(p, 0.0)} for {p!r} "
                    f"but the balance says {ledger._spent.get(p, 0.0)}"
                )
        return ledger
