"""Privacy budget accounting for repeated location reports.

The paper analyses a single report per user. In deployments workers
re-report as they move, and under sequential composition each
ε-Geo-Indistinguishable report spends ε of a cumulative budget. This
module provides the ledger a client (or an auditor) uses to enforce a cap:
an extension beyond the paper, but a prerequisite for real adoption of
either mechanism.

Composition note: Geo-I composes additively over *independent* mechanism
invocations on the same datum — reporting twice with budgets ε1 and ε2 is
(ε1+ε2)-Geo-I against an adversary seeing both reports. The ledger tracks
exactly that sum per principal.

Storage: balances live in a dense float64 array indexed by a
principal→row dict, and history in parallel row/epsilon arrays — the
cohort path (:meth:`PrivacyBudgetLedger.spend_batch`) charges thousands
of principals with a handful of array operations, and the audit
aggregates (:meth:`PrivacyBudgetLedger.total_spent`,
:meth:`PrivacyBudgetLedger.min_remaining`) are single reductions. The
JSON wire shape of :meth:`PrivacyBudgetLedger.to_dict` is unchanged from
the dict-backed ledger, so existing snapshots restore bit-identically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BudgetExceededError", "PrivacyBudgetLedger"]


class BudgetExceededError(RuntimeError):
    """Raised when a spend would push a principal past its budget cap."""


class PrivacyBudgetLedger:
    """Per-principal cumulative epsilon tracker with a hard cap.

    Parameters
    ----------
    capacity:
        Maximum cumulative epsilon any principal may spend.
    """

    def __init__(self, capacity: float) -> None:
        self.capacity = capacity
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        self._rows: dict[object, int] = {}  # principal -> balance row
        self._principals: list[object] = []  # row -> principal
        self._balances = np.zeros(16, dtype=np.float64)
        self._hist_rows = np.zeros(32, dtype=np.intp)
        self._hist_eps = np.zeros(32, dtype=np.float64)
        self._n_hist = 0

    def __repr__(self) -> str:  # matches the former dataclass repr
        return f"{type(self).__name__}(capacity={self.capacity!r})"

    def spent(self, principal) -> float:
        """Cumulative epsilon already spent by ``principal``."""
        row = self._rows.get(principal)
        return 0.0 if row is None else float(self._balances[row])

    def remaining(self, principal) -> float:
        """Budget left before ``principal`` hits the cap."""
        return self.capacity - self.spent(principal)

    def can_spend(self, principal, epsilon: float) -> bool:
        """Whether a further ``epsilon`` spend fits under the cap."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        return self.spent(principal) + epsilon <= self.capacity + 1e-12

    def spend(self, principal, epsilon: float) -> float:
        """Record an ``epsilon`` spend; returns the new cumulative total.

        Raises :class:`BudgetExceededError` (and records nothing) when the
        spend would exceed the cap — callers should check
        :meth:`can_spend` first on hot paths.
        """
        if not self.can_spend(principal, epsilon):
            raise BudgetExceededError(
                f"principal {principal!r} has {self.remaining(principal):.3f} "
                f"of {self.capacity} left; cannot spend {epsilon}"
            )
        row = self._row_of(principal)
        self._balances[row] += epsilon
        self._record(row, epsilon)
        return float(self._balances[row])

    def spend_batch(self, principals, epsilon: float) -> None:
        """Record the same ``epsilon`` spend for a whole cohort at once.

        The batched obfuscation path registers thousands of workers per
        call; this is its accounting mirror. All-or-nothing: if *any*
        principal would blow its cap the whole batch is rejected and
        nothing is recorded, so the ledger can never drift out of sync
        with a half-applied cohort.
        """
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        principals = list(principals)
        if not principals:
            return
        # resolve rows up front (allocating for new principals) so the
        # cap check and the apply are both pure array passes
        n_before = len(self._principals)
        rows = np.fromiter(
            (self._row_of(p) for p in principals),
            dtype=np.intp,
            count=len(principals),
        )
        # multiplicity-aware check: a principal repeated within the batch
        # is charged against its *total* batch spend, not pre-batch state
        counts = np.bincount(rows, minlength=len(self._principals))
        would_be = self._balances[: len(self._principals)] + counts * epsilon
        over = np.flatnonzero(would_be > self.capacity + 1e-12)
        if over.size:
            row = int(over[0])
            p = self._principals[row]
            k = int(counts[row])
            # all-or-nothing includes the row table: principals first seen
            # in a rejected batch must not linger as zero-balance rows
            for stray in self._principals[n_before:]:
                del self._rows[stray]
            del self._principals[n_before:]
            raise BudgetExceededError(
                f"principal {p!r} has {self.remaining(p):.3f} of "
                f"{self.capacity} left; cannot spend {k} x "
                f"{epsilon} (batch of {len(principals)} rejected)"
            )
        np.add.at(self._balances, rows, epsilon)
        self._record_many(rows, epsilon)

    @property
    def history(self) -> list[tuple[object, float]]:
        """All recorded spends in order, as ``(principal, epsilon)``."""
        return [
            (self._principals[self._hist_rows[i]], float(self._hist_eps[i]))
            for i in range(self._n_hist)
        ]

    @property
    def principals(self) -> int:
        """Number of principals with at least one recorded spend."""
        return len(self._principals)

    def total_spent(self) -> float:
        """Sum of all spends across principals (for dashboards)."""
        return float(self._balances[: len(self._principals)].sum())

    def min_remaining(self) -> float:
        """Smallest remaining budget over all known principals.

        The auditor's headline number: how close the most-exposed user is
        to the cap. ``capacity`` when nobody has spent yet.
        """
        if not self._principals:
            return self.capacity
        return self.capacity - float(
            self._balances[: len(self._principals)].max()
        )

    def mean_remaining(self) -> float:
        """Average remaining budget over all known principals."""
        if not self._principals:
            return self.capacity
        return self.capacity - self.total_spent() / len(self._principals)

    # ------------------------------------------------------------------ #
    # internals                                                           #
    # ------------------------------------------------------------------ #

    def _row_of(self, principal) -> int:
        row = self._rows.get(principal)
        if row is None:
            row = len(self._principals)
            self._rows[principal] = row
            self._principals.append(principal)
            if row >= len(self._balances):
                grown = np.zeros(2 * len(self._balances), dtype=np.float64)
                grown[:row] = self._balances
                self._balances = grown
        return row

    def _record(self, row: int, epsilon: float) -> None:
        if self._n_hist >= len(self._hist_rows):
            self._grow_history(self._n_hist + 1)
        self._hist_rows[self._n_hist] = row
        self._hist_eps[self._n_hist] = epsilon
        self._n_hist += 1

    def _record_many(self, rows: np.ndarray, epsilon: float) -> None:
        end = self._n_hist + len(rows)
        if end > len(self._hist_rows):
            self._grow_history(end)
        self._hist_rows[self._n_hist : end] = rows
        self._hist_eps[self._n_hist : end] = epsilon
        self._n_hist = end

    def _grow_history(self, need: int) -> None:
        size = max(need, 2 * len(self._hist_rows))
        rows = np.zeros(size, dtype=np.intp)
        eps = np.zeros(size, dtype=np.float64)
        rows[: self._n_hist] = self._hist_rows[: self._n_hist]
        eps[: self._n_hist] = self._hist_eps[: self._n_hist]
        self._hist_rows, self._hist_eps = rows, eps

    # ------------------------------------------------------------------ #
    # serialization                                                       #
    # ------------------------------------------------------------------ #

    def history_len(self) -> int:
        """Checkpoint cursor: number of spends recorded so far."""
        return self._n_hist

    def export_delta(self, start: int) -> list:
        """Spends recorded since cursor ``start``, as ``[principal, eps]``.

        The history is append-only, so a suffix plus the parent
        checkpoint's balances reproduces the current ledger bit-for-bit:
        balances are ordered float sums of the history, and replaying the
        suffix performs the exact additions the live ledger performed.
        """
        return [
            [self._principals[self._hist_rows[i]], float(self._hist_eps[i])]
            for i in range(int(start), self._n_hist)
        ]

    @staticmethod
    def compose_dict(base: dict, suffix: list) -> dict:
        """Fold an :meth:`export_delta` suffix into a :meth:`to_dict`
        payload, returning the child checkpoint's :meth:`to_dict` form.

        Balances are advanced by replaying the suffix in order — the same
        IEEE additions the live ledger applied — so the composed ``spent``
        floats are bit-identical to a full export at the child.
        """
        spent = [[p, float(balance)] for p, balance in base["spent"]]
        rows = {p: i for i, (p, _) in enumerate(spent)}
        for principal, epsilon in suffix:
            row = rows.get(principal)
            if row is None:
                rows[principal] = len(spent)
                spent.append([principal, float(epsilon)])
            else:
                spent[row][1] += float(epsilon)
        return {
            "capacity": base["capacity"],
            "spent": spent,
            "history": [list(entry) for entry in base["history"]]
            + [[p, float(e)] for p, e in suffix],
        }

    def to_dict(self) -> dict:
        """JSON-ready export of the full ledger (audits, shard snapshots).

        Balances and history are emitted as ``[principal, epsilon]`` pairs
        rather than a mapping so integer principals survive a JSON
        round-trip (JSON object keys are always strings).
        """
        return {
            "capacity": self.capacity,
            "spent": [
                [p, float(self._balances[row])]
                for row, p in enumerate(self._principals)
            ],
            "history": [
                [self._principals[self._hist_rows[i]], float(self._hist_eps[i])]
                for i in range(self._n_hist)
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PrivacyBudgetLedger":
        """Rebuild a ledger exported by :meth:`to_dict`; validates totals."""
        if not isinstance(payload, dict):
            raise ValueError("ledger payload must be a dict")
        missing = {"capacity", "spent", "history"} - set(payload)
        if missing:
            raise ValueError(f"ledger payload missing fields: {sorted(missing)}")
        ledger = cls(float(payload["capacity"]))
        for entry in payload["spent"]:
            principal, value = entry
            value = float(value)
            if value <= 0 or value > ledger.capacity + 1e-12:
                raise ValueError(
                    f"spent balance {value} for {principal!r} outside "
                    f"(0, {ledger.capacity}]"
                )
            # resolve the row before indexing: _row_of may swap _balances
            # for a grown array, and the subscript target must be the new one
            row = ledger._row_of(principal)
            ledger._balances[row] = value
        for p, e in payload["history"]:
            # _row_of tolerates history-only principals (zero balance rows
            # would be caught by the totals check below)
            ledger._record(ledger._row_of(p), float(e))
        totals: dict[object, float] = {}
        for i in range(ledger._n_hist):
            p = ledger._principals[ledger._hist_rows[i]]
            totals[p] = totals.get(p, 0.0) + float(ledger._hist_eps[i])
        for p in ledger._principals:
            if abs(totals.get(p, 0.0) - ledger.spent(p)) > 1e-9:
                raise ValueError(
                    f"ledger history sums to {totals.get(p, 0.0)} for {p!r} "
                    f"but the balance says {ledger.spent(p)}"
                )
        return ledger
