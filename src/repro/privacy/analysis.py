"""Utility analysis of privacy mechanisms: displacement profiles.

The practical question behind the paper's Figs. 6-8 is "how far does each
mechanism move a report, per unit of privacy?". For the tree mechanism the
answer is closed-form (the displacement distribution over LCA levels is
leaf-independent on a complete tree); for planar Laplace it is the Gamma
radius law. This module computes both so they can be compared on one axis
— converted into *metric* units via the tree's scale — without running a
single matching experiment.

Used by ``examples/mechanism_explorer.py`` and the analysis tests; these
curves explain the experiment shapes (TBF's flat-in-ε distance, Laplace's
2/ε blowup) from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hst.paths import tree_distance_for_level
from ..hst.tree import HST
from .laplace import PlanarLaplaceMechanism
from .tree_mechanism import TreeMechanism
from .weights import TreeWeights

__all__ = [
    "DisplacementProfile",
    "tree_displacement_profile",
    "laplace_displacement_profile",
    "compare_mechanisms",
]


@dataclass(frozen=True)
class DisplacementProfile:
    """Distribution of the report's displacement, in metric units.

    ``support``/``probabilities`` give the exact (tree) or discretized
    (Laplace) law; ``mean`` and ``quantile`` summarize it.
    """

    mechanism: str
    epsilon: float
    support: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        if self.support.shape != self.probabilities.shape:
            raise ValueError("support and probabilities must align")
        total = float(self.probabilities.sum())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"probabilities sum to {total}, not 1")

    @property
    def mean(self) -> float:
        """Expected displacement."""
        return float((self.support * self.probabilities).sum())

    @property
    def stay_probability(self) -> float:
        """Mass at zero displacement."""
        return float(self.probabilities[self.support == 0.0].sum())

    def quantile(self, q: float) -> float:
        """Smallest displacement with cumulative mass >= ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {q}")
        order = np.argsort(self.support)
        cum = np.cumsum(self.probabilities[order])
        idx = int(np.searchsorted(cum, q - 1e-12))
        idx = min(idx, len(order) - 1)
        return float(self.support[order][idx])


def tree_displacement_profile(tree: HST, epsilon: float) -> DisplacementProfile:
    """Exact displacement law of the tree mechanism, in metric units.

    The LCA level between the true and obfuscated leaf follows
    ``TreeWeights.level_probs``; each level maps to the deterministic tree
    distance ``2^{i+2} - 4``, divided by the tree's metric scale. (Tree
    distance upper-bounds the Euclidean displacement between predefined
    points, so this is the conservative utility curve.)
    """
    weights = TreeWeights.from_tree(tree, epsilon)
    support = np.array(
        [
            tree_distance_for_level(level) / tree.metric_scale
            for level in range(tree.depth + 1)
        ]
    )
    return DisplacementProfile(
        mechanism="tree",
        epsilon=float(epsilon),
        support=support,
        probabilities=weights.level_probs.copy(),
    )


def laplace_displacement_profile(
    epsilon: float, max_radius: float | None = None, bins: int = 512
) -> DisplacementProfile:
    """Discretized radius law of the planar Laplace mechanism.

    The noise radius has CDF ``1 - (1 + eps r) e^{-eps r}``; we discretize
    it to ``bins`` equal-width cells up to ``max_radius`` (default: the
    99.9% quantile) with the tail mass folded into the last cell.
    """
    mech = PlanarLaplaceMechanism(epsilon)
    if max_radius is None:
        max_radius = float(mech.inverse_radius_cdf(0.999))
    if max_radius <= 0:
        raise ValueError("max_radius must be positive")
    edges = np.linspace(0.0, max_radius, bins + 1)
    cdf = np.asarray(mech.radius_cdf(edges))
    probabilities = np.diff(cdf)
    probabilities[-1] += 1.0 - cdf[-1]  # fold the tail in
    centers = (edges[:-1] + edges[1:]) / 2.0
    return DisplacementProfile(
        mechanism="laplace",
        epsilon=float(epsilon),
        support=centers,
        probabilities=probabilities,
    )


def compare_mechanisms(
    tree: HST, epsilons, quantiles=(0.5, 0.9)
) -> list[dict]:
    """One row per ε: expected/quantile displacement of both mechanisms.

    This table is the first-principles explanation of Fig. 7a: Laplace's
    mean displacement is exactly ``2/ε`` while the tree mechanism's mean
    is bounded by the tree geometry and saturates as ε shrinks.
    """
    rows = []
    for eps in epsilons:
        tree_profile = tree_displacement_profile(tree, eps)
        lap_profile = laplace_displacement_profile(eps)
        row = {
            "epsilon": float(eps),
            "tree_mean": tree_profile.mean,
            "tree_stay": tree_profile.stay_probability,
            "laplace_mean": lap_profile.mean,
        }
        for q in quantiles:
            row[f"tree_q{int(q * 100)}"] = tree_profile.quantile(q)
            row[f"laplace_q{int(q * 100)}"] = lap_profile.quantile(q)
        rows.append(row)
    return rows


def empirical_displacement(
    mechanism: TreeMechanism, point_index: int, n_samples: int, seed=None
) -> np.ndarray:
    """Sampled metric displacements of one real leaf (for validation)."""
    from ..utils import ensure_rng

    rng = ensure_rng(seed)
    tree = mechanism.tree
    x = tree.path_of(point_index)
    out = np.empty(n_samples)
    for i in range(n_samples):
        z = mechanism.obfuscate_walk(x, rng)
        out[i] = tree.tree_distance(x, z) / tree.metric_scale
    return out
