"""Command-line load generator for the serving layer.

Replays a timed workload through the versioned client API
(:mod:`repro.api`) against the in-process or sharded-engine backend
(``python -m repro.cluster`` is the cluster counterpart).

Examples::

    python -m repro.service --smoke
    python -m repro.service --workload taxi --shards 3 3 --workers 4000 \
        --tasks 2000 --rate 100 --arrival bursty
    python -m repro.service --backend inprocess --shards 1 1 --json
"""

from __future__ import annotations

import argparse
import json
import sys

from .loadgen import LoadConfig, LoadGenerator


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Replay a timed workload against the sharded assignment engine.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick sharded end-to-end run (2x2 shards, 600 tasks) for CI",
    )
    parser.add_argument(
        "--backend",
        choices=("sharded", "inprocess"),
        default="sharded",
        help="assignment backend behind the API client (default sharded; "
        "inprocess needs --shards 1 1)",
    )
    parser.add_argument(
        "--workload", choices=("gaussian", "taxi"), default="gaussian"
    )
    parser.add_argument("--workers", type=int, default=2000)
    parser.add_argument("--tasks", type=int, default=600)
    parser.add_argument(
        "--rate", type=float, default=50.0, help="tasks per simulated time unit"
    )
    parser.add_argument(
        "--arrival", choices=("poisson", "uniform", "bursty"), default="poisson"
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs=2,
        default=(2, 2),
        metavar=("NX", "NY"),
        help="shard lattice shape (default 2 2)",
    )
    parser.add_argument(
        "--grid", type=int, default=12, help="predefined-point lattice side per shard"
    )
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-worker cumulative epsilon cap",
    )
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument(
        "--warm",
        type=float,
        default=0.5,
        help="fraction of workers registered before traffic starts",
    )
    parser.add_argument("--taxi-day", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    try:
        config = LoadConfig(
            workload=args.workload,
            n_workers=args.workers,
            n_tasks=args.tasks,
            task_rate=args.rate,
            arrival=args.arrival,
            warm_fraction=args.warm,
            shards=tuple(args.shards),
            grid_nx=args.grid,
            epsilon=args.epsilon,
            budget_capacity=args.budget,
            batch_size=args.batch_size,
            taxi_day=args.taxi_day,
            seed=args.seed,
        )
        if args.backend == "inprocess" and tuple(args.shards) != (1, 1):
            raise ValueError(
                "the inprocess backend is single-tree; use --shards 1 1"
            )
    except ValueError as exc:
        parser.error(str(exc))
    report = LoadGenerator(config).run(backend=args.backend)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        label = "smoke" if args.smoke else "run"
        print(
            f"[repro.service {label}] backend={args.backend} "
            f"workload={config.workload} "
            f"shards={config.shards[0]}x{config.shards[1]} "
            f"workers={config.n_workers} tasks={config.n_tasks} "
            f"arrival={config.arrival}",
            file=sys.stderr,
        )
        print(report.format())

    if args.smoke:
        ok = (
            len(report.shards) >= 2
            and report.tasks_total >= 500
            and report.tasks_assigned > 0
        )
        if not ok:
            print("[repro.service smoke] FAILED acceptance gates", file=sys.stderr)
            return 1
        print("[repro.service smoke] OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
