"""repro.service — the sharded online assignment serving layer.

The paper's algorithms are single-region and single-stream; this package
is the production-shaped layer on top: the service region is partitioned
into shards (:class:`ShardMap`), each shard publishes its own HST and runs
its own mechanism + ledger + Algorithm-4 matcher (:class:`ShardServer`),
and the :class:`ShardedAssignmentEngine` routes timed worker/task events
(:mod:`repro.service.events`) to shards, batching worker cohorts through
the vectorized obfuscation path. :class:`LoadGenerator` replays the repo's
synthetic Gaussian and Chengdu-taxi workloads against the engine at
configurable rates, and :class:`ServiceReport` carries the run's
throughput, latency quantiles, assignment distances and per-shard privacy
budget audit.

CLI::

    python -m repro.service --smoke
    python -m repro.service --workload taxi --shards 3 3 --tasks 2000 --json
"""

from .engine import ShardedAssignmentEngine
from .events import RequestQueue, TaskArrival, WorkerArrival, merge_event_streams
from .loadgen import LoadConfig, LoadGenerator
from .metrics import ServiceReport, ShardMetrics, ShardSnapshot
from .shard import ShardServer
from .sharding import ShardMap

__all__ = [
    "LoadConfig",
    "LoadGenerator",
    "RequestQueue",
    "ServiceReport",
    "ShardMap",
    "ShardMetrics",
    "ShardServer",
    "ShardSnapshot",
    "ShardedAssignmentEngine",
    "TaskArrival",
    "WorkerArrival",
    "merge_event_streams",
]
