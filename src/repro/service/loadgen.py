"""Load generation: replay synthetic workloads through the client API.

The generator turns the repo's workload models into *timed* event streams:

* ``gaussian`` — the paper's synthetic Table-II model
  (:func:`~repro.workloads.synthetic.gaussian_workload`);
* ``taxi`` — the Chengdu-like peak-hour substitute
  (:class:`~repro.workloads.taxi.ChengduTaxiDataset`), one simulated day.

A ``warm_fraction`` of the workers registers before traffic starts (the
overnight fleet); the rest come online during the run, interleaved with
tasks, exercising the streaming-registration path. Task arrival times
come from the :mod:`repro.workloads.arrival` processes (``poisson``,
``uniform`` or ``bursty``).

Replays go through :class:`repro.api.AssignmentClient`, so one generator
drives any backend — in-process, sharded engine, or cluster — and the
assignment outcomes come back as typed responses. Because the generator —
unlike the server — knows every true coordinate, it closes the loop on
quality: it joins the replied ``(task, worker)`` decisions back to the
true locations and adds the mean *true* assignment distance to the
report. The pre-API entry points (``run(engine=...)``,
:meth:`LoadGenerator.make_engine`) survive as deprecation shims.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace

import numpy as np

from ..geometry.box import Box
from ..utils import ensure_rng
from ..workloads.arrival import (
    bursty_arrival_times,
    poisson_arrival_times,
    uniform_arrival_times,
)
from ..workloads.synthetic import SyntheticConfig, gaussian_workload
from ..workloads.taxi import ChengduTaxiDataset
from .engine import ShardedAssignmentEngine
from .events import RequestQueue, TaskArrival, WorkerArrival, merge_event_streams
from .metrics import ServiceReport

__all__ = ["LoadConfig", "LoadGenerator"]

_WORKLOADS = ("gaussian", "taxi")
_ARRIVALS = ("poisson", "uniform", "bursty")


@dataclass(frozen=True)
class LoadConfig:
    """Everything one load-generation run needs."""

    workload: str = "gaussian"
    n_workers: int = 2000
    n_tasks: int = 600
    task_rate: float = 50.0
    arrival: str = "poisson"
    warm_fraction: float = 0.5
    shards: tuple[int, int] = (2, 2)
    grid_nx: int = 12
    epsilon: float = 0.5
    budget_capacity: float = 2.0
    batch_size: int = 256
    taxi_day: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workload not in _WORKLOADS:
            raise ValueError(f"workload must be one of {_WORKLOADS}")
        if self.arrival not in _ARRIVALS:
            raise ValueError(f"arrival must be one of {_ARRIVALS}")
        if self.n_workers < 1 or self.n_tasks < 1:
            raise ValueError("need at least one worker and one task")
        if self.task_rate <= 0:
            raise ValueError(f"task_rate must be positive, got {self.task_rate}")
        if not 0.0 <= self.warm_fraction <= 1.0:
            raise ValueError("warm_fraction must lie in [0, 1]")
        # validate the engine knobs here too, so the CLI can surface every
        # bad flag as a clean usage error instead of a traceback mid-run
        if len(self.shards) != 2 or min(self.shards) < 1:
            raise ValueError(f"shards must be (nx, ny) with nx, ny >= 1, got {self.shards}")
        if self.grid_nx < 1:
            raise ValueError(f"grid_nx must be >= 1, got {self.grid_nx}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.budget_capacity < self.epsilon:
            raise ValueError(
                "budget_capacity must cover at least one report's epsilon "
                f"(got capacity {self.budget_capacity} < epsilon {self.epsilon})"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


def _audit_true_distance(
    report: ServiceReport, pairs, workers, tasks
) -> ServiceReport:
    """Join ``(task, worker)`` pairs back to true coordinates.

    The generator-side quality audit: the server only ever sees reported
    distances, so the mean *true* assignment distance must be computed
    here, where the true coordinate arrays live.
    """
    if not pairs:
        return report
    t_idx = np.array([t for t, _ in pairs])
    w_idx = np.array([w for _, w in pairs])
    true_d = np.hypot(*(tasks[t_idx] - workers[w_idx]).T)
    return replace(report, mean_true_distance=float(true_d.mean()))


class LoadGenerator:
    """Build timed event streams and drive a backend through them."""

    def __init__(self, config: LoadConfig | None = None) -> None:
        self.config = config or LoadConfig()

    # ------------------------------------------------------------------ #
    # stream construction                                                 #
    # ------------------------------------------------------------------ #

    def build_locations(self) -> tuple[Box, np.ndarray, np.ndarray]:
        """Draw the run's region, worker and task coordinates."""
        cfg = self.config
        if cfg.workload == "gaussian":
            wl = gaussian_workload(
                SyntheticConfig(n_tasks=cfg.n_tasks, n_workers=cfg.n_workers),
                seed=cfg.seed,
            )
            return wl.region, wl.worker_locations, wl.task_locations
        dataset = ChengduTaxiDataset()
        wl = dataset.day_workload(cfg.taxi_day, cfg.n_workers, seed=cfg.seed)
        tasks = wl.task_locations
        if cfg.n_tasks < len(tasks):
            tasks = tasks[: cfg.n_tasks]
        return wl.region, wl.worker_locations, tasks

    def build_events(self):
        """The full timed stream: ``(region, events, workers, tasks)``.

        ``workers`` / ``tasks`` are the true coordinate arrays, returned so
        the caller can audit assignment quality after the replay.
        """
        cfg = self.config
        rng = ensure_rng(cfg.seed + 1)
        region, workers, tasks = self.build_locations()
        n_tasks = len(tasks)

        if cfg.arrival == "poisson":
            task_times = poisson_arrival_times(n_tasks, cfg.task_rate, rng)
        elif cfg.arrival == "uniform":
            task_times = uniform_arrival_times(
                n_tasks, n_tasks / cfg.task_rate, rng
            )
        else:
            task_times = bursty_arrival_times(n_tasks, cfg.task_rate, seed=rng)
        horizon = float(task_times[-1]) if n_tasks else 0.0

        n_warm = int(round(cfg.warm_fraction * len(workers)))
        worker_times = np.concatenate(
            [
                np.zeros(n_warm),
                np.sort(rng.uniform(0.0, horizon, size=len(workers) - n_warm))
                if horizon > 0
                else np.zeros(len(workers) - n_warm),
            ]
        )
        worker_events = [
            WorkerArrival(time=float(t), worker_id=i, location=loc)
            for i, (t, loc) in enumerate(zip(worker_times, workers))
        ]
        task_events = [
            TaskArrival(time=float(t), task_id=i, location=loc)
            for i, (t, loc) in enumerate(zip(task_times, tasks))
        ]
        events = merge_event_streams(worker_events, task_events)
        return region, events, workers, tasks

    # ------------------------------------------------------------------ #
    # replay                                                              #
    # ------------------------------------------------------------------ #

    def service_spec(self, region: Box):
        """This run's :class:`repro.api.ServiceSpec` (backend-agnostic).

        The root seed is offset exactly like the historical engine seed,
        so reseeded comparisons across repo versions stay meaningful.
        """
        from ..api import ServiceSpec

        cfg = self.config
        return ServiceSpec(
            region=region,
            shards=cfg.shards,
            grid_nx=cfg.grid_nx,
            epsilon=cfg.epsilon,
            budget_capacity=cfg.budget_capacity,
            batch_size=cfg.batch_size,
            seed=cfg.seed + 2,
        )

    def replay(self, client, plan=None) -> ServiceReport:
        """Replay the stream through an API client; quality-audited report.

        ``plan`` is a prebuilt :meth:`build_events` tuple (so callers who
        needed the region to construct their backend don't synthesize the
        workload twice). The wall clock covers serving — streaming the
        requests plus the final flush — never backend setup, mirroring
        the paper's running-time discipline. Every assignment decision
        arrives as a typed response, which is what lets the generator
        audit true distances without reaching into backend internals.
        """
        from ..api import TaskDecision, requests_from_events

        region, events, workers, tasks = plan if plan is not None else self.build_events()
        pairs: list[tuple[int, int]] = []
        start = time.perf_counter()
        for response in client.stream(requests_from_events(events)):
            if isinstance(response, TaskDecision) and response.worker_id is not None:
                pairs.append((response.task_id, response.worker_id))
        client.flush()
        wall = time.perf_counter() - start
        report = client.report(wall_seconds=wall)
        return _audit_true_distance(report, pairs, workers, tasks)

    def _build_engine(self, region: Box) -> ShardedAssignmentEngine:
        spec = self.service_spec(region)
        return ShardedAssignmentEngine(
            region,
            shards=spec.shards,
            grid_nx=spec.grid_nx,
            epsilon=spec.epsilon,
            budget_capacity=spec.budget_capacity,
            batch_size=spec.batch_size,
            seed=spec.seed,
            seeding="keyed",
        )

    def make_engine(self, region: Box) -> ShardedAssignmentEngine:
        """Deprecated: construct backends via :func:`repro.api.make_backend`."""
        warnings.warn(
            "LoadGenerator.make_engine is deprecated; build a backend with "
            "repro.api.make_backend('sharded', generator.service_spec(region)) "
            "and drive it through an AssignmentClient",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._build_engine(region)

    def run(
        self,
        engine: ShardedAssignmentEngine | None = None,
        *,
        backend: str = "sharded",
        backend_kwargs: dict | None = None,
    ) -> ServiceReport:
        """Replay the stream and return a quality-audited report.

        The replay goes through :class:`repro.api.AssignmentClient` over
        a freshly built backend of ``backend`` kind (``"inprocess"``,
        ``"sharded"`` or ``"cluster"``; ``backend_kwargs`` reach the
        backend constructor). Backend construction (HST builds, process
        spawns) happens *outside* the timed window, mirroring the paper's
        running-time discipline: the clock measures serving, not setup.

        Passing an explicit ``engine`` is the deprecated pre-API calling
        convention; it still works but warns.
        """
        if engine is not None:
            warnings.warn(
                "LoadGenerator.run(engine=...) is deprecated; pass "
                "backend='sharded' (or use LoadGenerator.replay with an "
                "AssignmentClient over any backend) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            region, events, workers, tasks = self.build_events()
            report = engine.run(RequestQueue(events))
            return _audit_true_distance(report, engine.assignments, workers, tasks)

        from ..api import AssignmentClient, make_backend

        plan = self.build_events()
        backend_obj = make_backend(
            backend, self.service_spec(plan[0]), **(backend_kwargs or {})
        )
        with AssignmentClient(backend_obj) as client:
            return self.replay(client, plan)
