"""Spatial sharding of the service region.

A production deployment cannot serve a whole metro area from one HST: tree
construction is quadratic in the predefined point count and a single
matcher trie is a serialization point. The engine therefore partitions the
region into an ``nx x ny`` lattice of shard cells; each shard publishes its
own HST over its own predefined points and runs its own matcher, so shards
scale independently and a request only ever touches one of them.

Routing reuses the geometry layer: the shard centers are exactly
:func:`~repro.geometry.grid.uniform_grid` over the region, and a
:class:`~repro.geometry.grid.SnapIndex` over those centers maps any
coordinate to its owning cell (nearest-center == containing-cell for a
uniform lattice, with clamping handling on-boundary and out-of-region
points).

Privacy note: the shard id leaks only which cell a user is in, and the
cells are public knowledge — the same granularity coarsening as snapping
to a predefined point, which the paper's model already accepts. Within a
shard, reports stay ε-Geo-Indistinguishable on the shard's tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..geometry.box import Box
from ..geometry.grid import SnapIndex, uniform_grid
from ..geometry.points import as_points

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Partition of a service region into an ``nx x ny`` lattice of shards.

    Shard ids are row-major (y outer, x inner), matching the ordering of
    :func:`~repro.geometry.grid.uniform_grid`.
    """

    region: Box
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError(f"need at least a 1x1 shard grid, got {self.nx}x{self.ny}")

    @property
    def n_shards(self) -> int:
        return self.nx * self.ny

    @cached_property
    def centers(self) -> np.ndarray:
        """``(n_shards, 2)`` shard cell centers (the routing anchors)."""
        return uniform_grid(self.region, self.nx, self.ny)

    @cached_property
    def _router(self) -> SnapIndex:
        return SnapIndex(self.centers)

    def shard_box(self, shard_id: int) -> Box:
        """The cell of ``shard_id`` as a :class:`Box`."""
        if not 0 <= shard_id < self.n_shards:
            raise IndexError(f"shard {shard_id} outside [0, {self.n_shards})")
        ix = shard_id % self.nx
        iy = shard_id // self.nx
        w = self.region.width / self.nx
        h = self.region.height / self.ny
        return Box(
            self.region.xmin + ix * w,
            self.region.ymin + iy * h,
            self.region.xmin + (ix + 1) * w,
            self.region.ymin + (iy + 1) * h,
        )

    def subdivide(self, shard_id: int, nx: int, ny: int | None = None) -> "ShardMap":
        """A finer ``nx x ny`` sub-lattice over one cell of this map.

        The incremental-routing hook behind hot-shard splitting
        (:mod:`repro.cluster.balancer`): the returned map tiles exactly
        ``shard_box(shard_id)``, so a router can delegate any location that
        falls in the hot cell to the sub-lattice while every other cell
        keeps its existing routing.
        """
        return ShardMap(self.shard_box(shard_id), nx, nx if ny is None else ny)

    def shard_of(self, location) -> int:
        """Shard id owning ``location`` (out-of-region snaps to the edge)."""
        return int(self.shard_of_many(np.asarray(location)[None, :])[0])

    def shard_of_many(self, locations) -> np.ndarray:
        """Vectorized routing: shard id per row of an ``(n, 2)`` array."""
        pts = self.region.clamp(as_points(locations))
        if len(pts) == 0:
            return np.empty(0, dtype=np.intp)
        return self._router.snap_many(pts)
