"""Serving telemetry: per-shard counters, latency quantiles, budget audit.

Each :class:`~repro.service.shard.ShardServer` owns a mutable
:class:`ShardMetrics` recorder; at the end of a run the engine freezes the
recorders into :class:`ShardSnapshot` rows and one aggregate
:class:`ServiceReport`. Aggregate latency quantiles are computed from the
pooled raw samples, not from per-shard quantiles (quantiles don't average).

Latencies are *measured wall-clock* seconds around the matching hot path —
the quantity an SLO would track — while throughput is reported both
against wall time (tasks/sec the Python engine sustains) and against the
simulated clock (the offered rate the run replayed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ShardMetrics",
    "ShardSnapshot",
    "ServiceReport",
    "build_report",
    "percentile",
]


def percentile(samples, q: float) -> float:
    """``q``-th percentile of ``samples``; NaN when there are none.

    The quantile helper every aggregator in the serving stack shares
    (engine report, cluster report). Quantiles must always be computed
    from pooled raw samples — per-shard quantiles don't average.
    """
    if not len(samples):
        return float("nan")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def _mean(samples) -> float:
    if not len(samples):
        return float("nan")
    return float(np.mean(np.asarray(samples, dtype=np.float64)))


@dataclass
class ShardMetrics:
    """Mutable per-shard recorder filled while the shard serves traffic.

    ``shard_id`` is an ``int`` for the single-process engine's lattice
    cells and a ``str`` key (e.g. ``"s3/1"``) for cluster shards, which can
    be split into sub-shards at runtime.
    """

    shard_id: int | str
    workers_registered: int = 0
    cohorts_flushed: int = 0
    tasks_assigned: int = 0
    tasks_unassigned: int = 0
    latencies_s: list[float] = field(default_factory=list)
    reported_distances: list[float] = field(default_factory=list)

    def record_cohort(self, size: int) -> None:
        self.workers_registered += size
        self.cohorts_flushed += 1

    def record_assignment(self, latency_s: float, reported_distance: float) -> None:
        self.tasks_assigned += 1
        self.latencies_s.append(latency_s)
        self.reported_distances.append(reported_distance)

    def record_unassigned(self, latency_s: float) -> None:
        self.tasks_unassigned += 1
        self.latencies_s.append(latency_s)

    def to_dict(self) -> dict:
        """JSON-ready raw state (part of a shard's checkpoint snapshot)."""
        return {
            "shard_id": self.shard_id,
            "workers_registered": self.workers_registered,
            "cohorts_flushed": self.cohorts_flushed,
            "tasks_assigned": self.tasks_assigned,
            "tasks_unassigned": self.tasks_unassigned,
            "latencies_s": [float(v) for v in self.latencies_s],
            "reported_distances": [float(v) for v in self.reported_distances],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardMetrics":
        """Rebuild a recorder exported by :meth:`to_dict`."""
        missing = {
            "shard_id",
            "workers_registered",
            "cohorts_flushed",
            "tasks_assigned",
            "tasks_unassigned",
            "latencies_s",
            "reported_distances",
        } - set(payload)
        if missing:
            raise ValueError(f"metrics payload missing fields: {sorted(missing)}")
        return cls(
            shard_id=payload["shard_id"],
            workers_registered=int(payload["workers_registered"]),
            cohorts_flushed=int(payload["cohorts_flushed"]),
            tasks_assigned=int(payload["tasks_assigned"]),
            tasks_unassigned=int(payload["tasks_unassigned"]),
            latencies_s=[float(v) for v in payload["latencies_s"]],
            reported_distances=[float(v) for v in payload["reported_distances"]],
        )

    def snapshot(self, *, epsilon: float, ledger) -> "ShardSnapshot":
        """Freeze the recorder, folding in the shard's budget ledger."""
        return ShardSnapshot(
            shard_id=self.shard_id,
            epsilon=epsilon,
            workers_registered=self.workers_registered,
            cohorts_flushed=self.cohorts_flushed,
            tasks_assigned=self.tasks_assigned,
            tasks_unassigned=self.tasks_unassigned,
            latency_p50_ms=percentile(self.latencies_s, 50) * 1e3,
            latency_p95_ms=percentile(self.latencies_s, 95) * 1e3,
            mean_reported_distance=_mean(self.reported_distances),
            budget_capacity=ledger.capacity,
            budget_min_remaining=ledger.min_remaining(),
            budget_mean_remaining=ledger.mean_remaining(),
        )


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's final counters and audit numbers."""

    shard_id: int | str
    epsilon: float
    workers_registered: int
    cohorts_flushed: int
    tasks_assigned: int
    tasks_unassigned: int
    latency_p50_ms: float
    latency_p95_ms: float
    mean_reported_distance: float
    budget_capacity: float
    budget_min_remaining: float
    budget_mean_remaining: float

    @property
    def tasks_seen(self) -> int:
        return self.tasks_assigned + self.tasks_unassigned


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate outcome of one service run.

    ``mean_true_distance`` is filled by the load generator, which — unlike
    the server — knows the true coordinates; it stays NaN for runs driven
    by obfuscated input only.
    """

    shards: tuple[ShardSnapshot, ...]
    wall_seconds: float
    sim_duration: float
    latency_p50_ms: float
    latency_p95_ms: float
    mean_reported_distance: float
    mean_true_distance: float = float("nan")

    @property
    def tasks_total(self) -> int:
        return sum(s.tasks_seen for s in self.shards)

    @property
    def tasks_assigned(self) -> int:
        return sum(s.tasks_assigned for s in self.shards)

    @property
    def tasks_unassigned(self) -> int:
        return sum(s.tasks_unassigned for s in self.shards)

    @property
    def workers_registered(self) -> int:
        return sum(s.workers_registered for s in self.shards)

    @property
    def throughput_tasks_per_s(self) -> float:
        """Tasks matched per wall-clock second (the engine's real speed)."""
        if self.wall_seconds <= 0:
            return float("nan")
        return self.tasks_total / self.wall_seconds

    @property
    def offered_rate(self) -> float:
        """Tasks per simulated time unit the replayed stream offered."""
        if self.sim_duration <= 0:
            return float("nan")
        return self.tasks_total / self.sim_duration

    def to_dict(self) -> dict:
        """JSON-ready form (benchmarks and the CLI's ``--json``)."""
        return {
            "tasks_total": self.tasks_total,
            "tasks_assigned": self.tasks_assigned,
            "tasks_unassigned": self.tasks_unassigned,
            "workers_registered": self.workers_registered,
            "wall_seconds": self.wall_seconds,
            "sim_duration": self.sim_duration,
            "throughput_tasks_per_s": self.throughput_tasks_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "mean_reported_distance": self.mean_reported_distance,
            "mean_true_distance": self.mean_true_distance,
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "epsilon": s.epsilon,
                    "workers": s.workers_registered,
                    "cohorts": s.cohorts_flushed,
                    "assigned": s.tasks_assigned,
                    "unassigned": s.tasks_unassigned,
                    "latency_p50_ms": s.latency_p50_ms,
                    "latency_p95_ms": s.latency_p95_ms,
                    "mean_reported_distance": s.mean_reported_distance,
                    "budget_capacity": s.budget_capacity,
                    "budget_min_remaining": s.budget_min_remaining,
                    "budget_mean_remaining": s.budget_mean_remaining,
                }
                for s in self.shards
            ],
        }

    def format(self) -> str:
        """Human-readable multi-line summary (the CLI's default output)."""
        lines = [
            f"tasks          {self.tasks_total} "
            f"({self.tasks_assigned} assigned, {self.tasks_unassigned} unassigned)",
            f"workers        {self.workers_registered} across {len(self.shards)} shards",
            f"throughput     {self.throughput_tasks_per_s:,.0f} tasks/s "
            f"(wall {self.wall_seconds:.3f}s, offered rate "
            f"{self.offered_rate:.1f} tasks/sim-time)",
            f"latency        p50 {self.latency_p50_ms:.3f} ms, "
            f"p95 {self.latency_p95_ms:.3f} ms",
            f"assignment distance  reported {self.mean_reported_distance:.2f}"
            + (
                ""
                if math.isnan(self.mean_true_distance)
                else f", true {self.mean_true_distance:.2f}"
            ),
            "per-shard:",
        ]
        header = (
            "  shard  workers  assigned  unassigned  p50ms   p95ms   "
            "dist    eps-left(min/mean)"
        )
        lines.append(header)
        for s in self.shards:
            lines.append(
                f"  {s.shard_id:>5}  {s.workers_registered:>7}  "
                f"{s.tasks_assigned:>8}  {s.tasks_unassigned:>10}  "
                f"{s.latency_p50_ms:>5.2f}  {s.latency_p95_ms:>6.2f}  "
                f"{s.mean_reported_distance:>6.2f}  "
                f"{s.budget_min_remaining:.2f}/{s.budget_mean_remaining:.2f} "
                f"of {s.budget_capacity:.2f}"
            )
        return "\n".join(lines)


def build_report(
    shards,
    latencies,
    distances,
    *,
    wall_seconds: float = float("nan"),
    sim_duration: float = 0.0,
) -> ServiceReport:
    """Assemble a :class:`ServiceReport` from frozen shard rows and pooled
    raw samples.

    The one aggregation path shared by the single-process engine and the
    cluster coordinator, so both report identical quantile semantics.
    """
    return ServiceReport(
        shards=tuple(shards),
        wall_seconds=wall_seconds,
        sim_duration=sim_duration,
        latency_p50_ms=percentile(latencies, 50) * 1e3,
        latency_p95_ms=percentile(latencies, 95) * 1e3,
        mean_reported_distance=(
            float(np.mean(np.asarray(distances, dtype=np.float64)))
            if len(distances)
            else float("nan")
        ),
    )
