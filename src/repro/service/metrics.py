"""Serving telemetry: per-shard counters, latency quantiles, budget audit.

Each :class:`~repro.service.shard.ShardServer` owns a mutable
:class:`ShardMetrics` recorder; at the end of a run the engine freezes the
recorders into :class:`ShardSnapshot` rows and one aggregate
:class:`ServiceReport`. Aggregate latency quantiles are computed from the
pooled raw samples, not from per-shard quantiles (quantiles don't average).

Latencies are *measured wall-clock* seconds around the matching hot path —
the quantity an SLO would track — while throughput is reported both
against wall time (tasks/sec the Python engine sustains) and against the
simulated clock (the offered rate the run replayed).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RESERVOIR_CAPACITY",
    "SampleReservoir",
    "ShardMetrics",
    "ShardSnapshot",
    "ServiceReport",
    "build_report",
    "percentile",
    "summarize_reservoir",
]

#: Default per-series sample cap. Below this many recordings a reservoir
#: holds every sample (quantiles are exact); beyond it, a uniform sample.
RESERVOIR_CAPACITY = 4096


class SampleReservoir:
    """Bounded uniform sample of a float stream (Vitter's Algorithm R).

    Telemetry series used to grow one float per task for the whole stream,
    which made shard checkpoints (and coordinator reply payloads) scale
    with stream length. A reservoir caps retention at ``capacity`` samples
    while keeping every sample until the cap is hit — so short runs lose
    nothing — and keeps *exact* ``count``/``total`` aggregates forever, so
    means never degrade to estimates.

    Replacement draws come from an internal splitmix64 counter rather than
    a shared RNG: the state is one integer, trivially serialized, and a
    restored reservoir replays the same replacement decisions — the
    property the cluster's bit-exact snapshot/replay guarantee needs.

    Delta checkpoints lean on the write pattern: below capacity the value
    list is append-only, and past capacity the only mutations are rare
    in-place victim replacements (probability ``capacity/count`` each).
    Replacements bump a generation counter per slot, so a delta export is
    the appended suffix plus the handful of overwritten slots — the
    append-only hot path pays nothing for the bookkeeping.
    """

    __slots__ = ("capacity", "count", "total", "values", "_state", "_gen", "_mutseq")

    _MASK = (1 << 64) - 1

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.values: list[float] = []
        self._state = int(seed) & self._MASK
        self._gen: dict[int, int] = {}  # slot -> mutation seq of last overwrite
        self._mutseq = 0

    def _next_rand(self) -> int:
        # splitmix64: full-period, one-int state, good enough for sampling
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def record(self, value: float) -> None:
        """Add one sample; evicts a uniform victim once at capacity."""
        value = float(value)
        self.count += 1
        self.total += value
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = self._next_rand() % self.count
        if slot < self.capacity:
            self.values[slot] = value
            self._mutseq += 1
            self._gen[slot] = self._mutseq

    def extend(self, values) -> None:
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        """Exact mean of *all* recorded samples, retained or not."""
        return self.total / self.count if self.count else float("nan")

    # sequence protocol: aggregators treat a reservoir like the raw list
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, SampleReservoir):
            return NotImplemented
        return (
            self.capacity == other.capacity
            and self.count == other.count
            and self.total == other.total
            and self.values == other.values
            and self._state == other._state
        )

    def __repr__(self) -> str:
        return (
            f"SampleReservoir(capacity={self.capacity}, count={self.count}, "
            f"held={len(self.values)})"
        )

    def to_dict(self) -> dict:
        """JSON-ready state (part of a shard's checkpoint snapshot)."""
        return {
            "capacity": self.capacity,
            "count": self.count,
            "total": float(self.total),
            "values": [float(v) for v in self.values],
            "state": self._state,
        }

    def cursor(self) -> dict:
        """Pure-value checkpoint cursor: enough to export a delta later.

        ``len`` is the clean prefix length (everything before it was
        already captured by the parent checkpoint unless overwritten) and
        ``mut`` is the mutation sequence at cursor time — slots whose
        generation exceeds it were overwritten inside the delta window.
        """
        return {"len": len(self.values), "mut": self._mutseq}

    def export_delta(self, cursor: dict) -> dict:
        """Changes since ``cursor`` (non-destructive; absolute aggregates).

        ``appended`` carries the value suffix past the cursor's clean
        length; ``set`` carries ``[slot, value]`` overwrites of slots the
        parent already held. Together with the parent's value list they
        reproduce the current list bit-for-bit.
        """
        clean_len = int(cursor["len"])
        clean_mut = int(cursor["mut"])
        return {
            "count": self.count,
            "total": float(self.total),
            "state": self._state,
            "appended": [float(v) for v in self.values[clean_len:]],
            "set": [
                [slot, float(self.values[slot])]
                for slot, gen in sorted(self._gen.items())
                if gen > clean_mut and slot < clean_len
            ],
        }

    @staticmethod
    def compose_dict(base: dict, delta: dict) -> dict:
        """Fold an :meth:`export_delta` payload into a :meth:`to_dict`
        payload, returning the child checkpoint's :meth:`to_dict` form."""
        values = [float(v) for v in base["values"]]
        values.extend(float(v) for v in delta["appended"])
        for slot, value in delta["set"]:
            values[int(slot)] = float(value)
        return {
            "capacity": base["capacity"],
            "count": int(delta["count"]),
            "total": float(delta["total"]),
            "values": values,
            "state": int(delta["state"]),
        }

    @classmethod
    def from_dict(cls, payload) -> "SampleReservoir":
        """Rebuild from :meth:`to_dict` output — or from the raw sample
        list older (v1) shard snapshots carried, which becomes a reservoir
        holding exactly those samples."""
        if isinstance(payload, list):
            res = cls()
            res.extend(float(v) for v in payload)
            return res
        missing = {"capacity", "count", "total", "values", "state"} - set(payload)
        if missing:
            raise ValueError(f"reservoir payload missing fields: {sorted(missing)}")
        res = cls(capacity=int(payload["capacity"]))
        res.count = int(payload["count"])
        res.total = float(payload["total"])
        res.values = [float(v) for v in payload["values"]]
        res._state = int(payload["state"]) & cls._MASK
        if len(res.values) > res.capacity or len(res.values) > res.count:
            raise ValueError("reservoir payload holds more samples than allowed")
        return res


def percentile(samples, q: float) -> float:
    """``q``-th percentile of ``samples``; NaN when there are none.

    The quantile helper every aggregator in the serving stack shares
    (engine report, cluster report). Quantiles must always be computed
    from pooled raw samples — per-shard quantiles don't average.
    """
    if not len(samples):
        return float("nan")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def summarize_reservoir(res) -> dict:
    """Standard stats block for one reservoir-backed series.

    The shape telemetry endpoints agree on (mesh coordinator peers,
    MetricsRegistry histogram snapshots): exact ``count``/``mean`` plus
    quantiles over the retained sample.
    """
    return {
        "count": res.count,
        "mean": res.mean,
        "p50": percentile(res, 50),
        "p95": percentile(res, 95),
    }


@dataclass
class ShardMetrics:
    """Mutable per-shard recorder filled while the shard serves traffic.

    ``shard_id`` is an ``int`` for the single-process engine's lattice
    cells and a ``str`` key (e.g. ``"s3/1"``) for cluster shards, which can
    be split into sub-shards at runtime.

    Raw latency/distance samples live in bounded
    :class:`SampleReservoir` series (seeded from the shard id, so a
    reseeded rerun keeps the same retained sample set), which caps
    checkpoint size and reply payloads on unbounded streams. Counters and
    means stay exact regardless of stream length.
    """

    shard_id: int | str
    workers_registered: int = 0
    cohorts_flushed: int = 0
    tasks_assigned: int = 0
    tasks_unassigned: int = 0
    latencies_s: SampleReservoir = None
    reported_distances: SampleReservoir = None

    def __post_init__(self) -> None:
        if self.latencies_s is None:
            self.latencies_s = SampleReservoir(
                seed=zlib.crc32(f"lat:{self.shard_id}".encode())
            )
        if self.reported_distances is None:
            self.reported_distances = SampleReservoir(
                seed=zlib.crc32(f"dist:{self.shard_id}".encode())
            )

    def record_cohort(self, size: int) -> None:
        self.workers_registered += size
        self.cohorts_flushed += 1

    def record_assignment(self, latency_s: float, reported_distance: float) -> None:
        self.tasks_assigned += 1
        self.latencies_s.record(latency_s)
        self.reported_distances.record(reported_distance)

    def record_unassigned(self, latency_s: float) -> None:
        self.tasks_unassigned += 1
        self.latencies_s.record(latency_s)

    def to_dict(self) -> dict:
        """JSON-ready raw state (part of a shard's checkpoint snapshot)."""
        return {
            "shard_id": self.shard_id,
            "workers_registered": self.workers_registered,
            "cohorts_flushed": self.cohorts_flushed,
            "tasks_assigned": self.tasks_assigned,
            "tasks_unassigned": self.tasks_unassigned,
            "latencies_s": self.latencies_s.to_dict(),
            "reported_distances": self.reported_distances.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardMetrics":
        """Rebuild a recorder exported by :meth:`to_dict`."""
        missing = {
            "shard_id",
            "workers_registered",
            "cohorts_flushed",
            "tasks_assigned",
            "tasks_unassigned",
            "latencies_s",
            "reported_distances",
        } - set(payload)
        if missing:
            raise ValueError(f"metrics payload missing fields: {sorted(missing)}")
        return cls(
            shard_id=payload["shard_id"],
            workers_registered=int(payload["workers_registered"]),
            cohorts_flushed=int(payload["cohorts_flushed"]),
            tasks_assigned=int(payload["tasks_assigned"]),
            tasks_unassigned=int(payload["tasks_unassigned"]),
            latencies_s=SampleReservoir.from_dict(payload["latencies_s"]),
            reported_distances=SampleReservoir.from_dict(payload["reported_distances"]),
        )

    def cursor(self) -> dict:
        """Pure-value checkpoint cursor for delta export."""
        return {
            "latencies_s": self.latencies_s.cursor(),
            "reported_distances": self.reported_distances.cursor(),
        }

    def export_delta(self, cursor: dict) -> dict:
        """Changes since ``cursor``. Counters are tiny, so they travel as
        absolute values; only the reservoirs get true deltas."""
        return {
            "workers_registered": self.workers_registered,
            "cohorts_flushed": self.cohorts_flushed,
            "tasks_assigned": self.tasks_assigned,
            "tasks_unassigned": self.tasks_unassigned,
            "latencies_s": self.latencies_s.export_delta(cursor["latencies_s"]),
            "reported_distances": self.reported_distances.export_delta(
                cursor["reported_distances"]
            ),
        }

    @staticmethod
    def compose_dict(base: dict, delta: dict) -> dict:
        """Fold an :meth:`export_delta` payload into a :meth:`to_dict`
        payload, returning the child checkpoint's :meth:`to_dict` form."""
        return {
            "shard_id": base["shard_id"],
            "workers_registered": int(delta["workers_registered"]),
            "cohorts_flushed": int(delta["cohorts_flushed"]),
            "tasks_assigned": int(delta["tasks_assigned"]),
            "tasks_unassigned": int(delta["tasks_unassigned"]),
            "latencies_s": SampleReservoir.compose_dict(
                base["latencies_s"], delta["latencies_s"]
            ),
            "reported_distances": SampleReservoir.compose_dict(
                base["reported_distances"], delta["reported_distances"]
            ),
        }

    def snapshot(self, *, epsilon: float, ledger) -> "ShardSnapshot":
        """Freeze the recorder, folding in the shard's budget ledger."""
        return ShardSnapshot(
            shard_id=self.shard_id,
            epsilon=epsilon,
            workers_registered=self.workers_registered,
            cohorts_flushed=self.cohorts_flushed,
            tasks_assigned=self.tasks_assigned,
            tasks_unassigned=self.tasks_unassigned,
            latency_p50_ms=percentile(self.latencies_s, 50) * 1e3,
            latency_p95_ms=percentile(self.latencies_s, 95) * 1e3,
            mean_reported_distance=self.reported_distances.mean,
            budget_capacity=ledger.capacity,
            budget_min_remaining=ledger.min_remaining(),
            budget_mean_remaining=ledger.mean_remaining(),
        )


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's final counters and audit numbers."""

    shard_id: int | str
    epsilon: float
    workers_registered: int
    cohorts_flushed: int
    tasks_assigned: int
    tasks_unassigned: int
    latency_p50_ms: float
    latency_p95_ms: float
    mean_reported_distance: float
    budget_capacity: float
    budget_min_remaining: float
    budget_mean_remaining: float

    @property
    def tasks_seen(self) -> int:
        return self.tasks_assigned + self.tasks_unassigned


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate outcome of one service run.

    ``mean_true_distance`` is filled by the load generator, which — unlike
    the server — knows the true coordinates; it stays NaN for runs driven
    by obfuscated input only.
    """

    shards: tuple[ShardSnapshot, ...]
    wall_seconds: float
    sim_duration: float
    latency_p50_ms: float
    latency_p95_ms: float
    mean_reported_distance: float
    mean_true_distance: float = float("nan")

    @property
    def tasks_total(self) -> int:
        return sum(s.tasks_seen for s in self.shards)

    @property
    def tasks_assigned(self) -> int:
        return sum(s.tasks_assigned for s in self.shards)

    @property
    def tasks_unassigned(self) -> int:
        return sum(s.tasks_unassigned for s in self.shards)

    @property
    def workers_registered(self) -> int:
        return sum(s.workers_registered for s in self.shards)

    @property
    def throughput_tasks_per_s(self) -> float:
        """Tasks matched per wall-clock second (the engine's real speed)."""
        if self.wall_seconds <= 0:
            return float("nan")
        return self.tasks_total / self.wall_seconds

    @property
    def offered_rate(self) -> float:
        """Tasks per simulated time unit the replayed stream offered."""
        if self.sim_duration <= 0:
            return float("nan")
        return self.tasks_total / self.sim_duration

    def to_dict(self) -> dict:
        """JSON-ready form (benchmarks and the CLI's ``--json``)."""
        return {
            "tasks_total": self.tasks_total,
            "tasks_assigned": self.tasks_assigned,
            "tasks_unassigned": self.tasks_unassigned,
            "workers_registered": self.workers_registered,
            "wall_seconds": self.wall_seconds,
            "sim_duration": self.sim_duration,
            "throughput_tasks_per_s": self.throughput_tasks_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "mean_reported_distance": self.mean_reported_distance,
            "mean_true_distance": self.mean_true_distance,
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "epsilon": s.epsilon,
                    "workers": s.workers_registered,
                    "cohorts": s.cohorts_flushed,
                    "assigned": s.tasks_assigned,
                    "unassigned": s.tasks_unassigned,
                    "latency_p50_ms": s.latency_p50_ms,
                    "latency_p95_ms": s.latency_p95_ms,
                    "mean_reported_distance": s.mean_reported_distance,
                    "budget_capacity": s.budget_capacity,
                    "budget_min_remaining": s.budget_min_remaining,
                    "budget_mean_remaining": s.budget_mean_remaining,
                }
                for s in self.shards
            ],
        }

    def format(self) -> str:
        """Human-readable multi-line summary (the CLI's default output)."""
        lines = [
            f"tasks          {self.tasks_total} "
            f"({self.tasks_assigned} assigned, {self.tasks_unassigned} unassigned)",
            f"workers        {self.workers_registered} across {len(self.shards)} shards",
            f"throughput     {self.throughput_tasks_per_s:,.0f} tasks/s "
            f"(wall {self.wall_seconds:.3f}s, offered rate "
            f"{self.offered_rate:.1f} tasks/sim-time)",
            f"latency        p50 {self.latency_p50_ms:.3f} ms, "
            f"p95 {self.latency_p95_ms:.3f} ms",
            f"assignment distance  reported {self.mean_reported_distance:.2f}"
            + (
                ""
                if math.isnan(self.mean_true_distance)
                else f", true {self.mean_true_distance:.2f}"
            ),
            "per-shard:",
        ]
        header = (
            "  shard  workers  assigned  unassigned  p50ms   p95ms   "
            "dist    eps-left(min/mean)"
        )
        lines.append(header)
        for s in self.shards:
            lines.append(
                f"  {s.shard_id:>5}  {s.workers_registered:>7}  "
                f"{s.tasks_assigned:>8}  {s.tasks_unassigned:>10}  "
                f"{s.latency_p50_ms:>5.2f}  {s.latency_p95_ms:>6.2f}  "
                f"{s.mean_reported_distance:>6.2f}  "
                f"{s.budget_min_remaining:.2f}/{s.budget_mean_remaining:.2f} "
                f"of {s.budget_capacity:.2f}"
            )
        return "\n".join(lines)


def build_report(
    shards,
    latencies,
    distances,
    *,
    wall_seconds: float = float("nan"),
    sim_duration: float = 0.0,
    distance_stats: tuple[float, int] | None = None,
) -> ServiceReport:
    """Assemble a :class:`ServiceReport` from frozen shard rows and pooled
    raw samples.

    The one aggregation path shared by the single-process engine and the
    cluster coordinator, so both report identical quantile semantics.
    ``distance_stats`` is an optional exact ``(total, count)`` over *all*
    reported distances; when given, the mean comes from it rather than
    from the (reservoir-retained) pooled samples, so the aggregate mean
    stays exact even past the retention cap.
    """
    if distance_stats is not None:
        total, count = distance_stats
        mean_distance = float(total) / count if count else float("nan")
    elif len(distances):
        mean_distance = float(np.mean(np.asarray(distances, dtype=np.float64)))
    else:
        mean_distance = float("nan")
    return ServiceReport(
        shards=tuple(shards),
        wall_seconds=wall_seconds,
        sim_duration=sim_duration,
        latency_p50_ms=percentile(latencies, 50) * 1e3,
        latency_p95_ms=percentile(latencies, 95) * 1e3,
        mean_reported_distance=mean_distance,
    )
