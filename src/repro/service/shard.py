"""One shard: a published HST, its mechanism, ledger and matching server.

A :class:`ShardServer` bundles everything one shard of the region needs to
serve traffic end to end:

* the *published* artifacts — its predefined-point HST
  (:func:`~repro.crowdsourcing.server.publish_tree` over the shard's box);
* the *client side* — a :class:`~repro.privacy.tree_mechanism.TreeMechanism`
  that obfuscates snapped leaves before anything crosses the trust
  boundary, with worker cohorts going through the vectorized
  :meth:`~repro.privacy.tree_mechanism.TreeMechanism.obfuscate_points_batch`
  path and every registration charged to a per-shard
  :class:`~repro.privacy.budget.PrivacyBudgetLedger`;
* the *server side* — a streaming
  :class:`~repro.crowdsourcing.server.MatchingServer`
  (``allow_late_registration=True``) running Algorithm 4 on reports only.

The class structure mirrors the paper's trust boundary: ``server`` never
sees a coordinate, only :class:`~repro.crowdsourcing.entities.WorkerReport`
/ :class:`~repro.crowdsourcing.entities.TaskReport` payloads produced here.
"""

from __future__ import annotations

import time

import numpy as np

from ..crowdsourcing.entities import TaskReport, WorkerReport
from ..crowdsourcing.server import MatchingServer, publish_tree
from ..geometry.box import Box
from ..geometry.points import as_points
from ..hst.paths import tree_distance_for_level
from ..hst.serialize import hst_from_dict, hst_to_dict
from ..privacy.budget import PrivacyBudgetLedger
from ..privacy.tree_mechanism import TreeMechanism
from ..utils import ensure_rng
from .metrics import ShardMetrics, ShardSnapshot

__all__ = ["ShardServer"]


class ShardServer:
    """Self-contained assignment service for one shard cell.

    Parameters
    ----------
    shard_id, box:
        The shard's identity and its cell of the region.
    grid_nx:
        Side of the shard's predefined-point lattice (``grid_nx**2``
        points; the HST is built over them at construction).
    epsilon:
        Geo-I budget spent per report on this shard's tree.
    budget_capacity:
        Cumulative epsilon cap per worker, enforced by the shard ledger.
    seed:
        Drives the HST build, the mechanism and task-report sampling.
    """

    def __init__(
        self,
        shard_id: int | str,
        box: Box,
        grid_nx: int = 16,
        epsilon: float = 0.5,
        budget_capacity: float = 2.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        rng = ensure_rng(seed)
        self.shard_id = shard_id
        self.box = box
        self.tree = publish_tree(box, grid_nx, seed=rng)
        self.mechanism = TreeMechanism(self.tree, epsilon, seed=rng)
        self.ledger = PrivacyBudgetLedger(budget_capacity)
        self.server = MatchingServer(self.tree, allow_late_registration=True)
        self.metrics = ShardMetrics(shard_id)
        self._rng = rng

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    @property
    def available_workers(self) -> int:
        return self.server.available_workers

    # ------------------------------------------------------------------ #
    # registration (batched client side)                                  #
    # ------------------------------------------------------------------ #

    def register_cohort(self, worker_ids, locations) -> None:
        """Register a worker cohort through the vectorized privacy path.

        Snaps all true locations to predefined points in one KD-tree
        query, obfuscates all leaves in one batched mechanism call, spends
        ``epsilon`` per worker on the shard ledger (all-or-nothing), and
        registers the resulting reports with the matching server.
        """
        locs = as_points(locations)
        ids = [int(w) for w in worker_ids]
        if len(ids) != len(locs):
            raise ValueError("need one worker id per location")
        if not ids:
            return
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate worker ids within a cohort")
        already = [w for w in ids if self.server.is_registered(w)]
        if already:
            # checked before the ledger spend so a rejected cohort cannot
            # leave budget charged for registrations that never happened
            raise ValueError(f"workers already registered: {already[:5]}")
        snapped = self.tree.snap_index.snap_many(locs)
        reports = self.mechanism.obfuscate_points_batch(snapped, self._rng)
        self.ledger.spend_batch(ids, self.epsilon)
        self.server.register_workers(
            WorkerReport(worker_id=w, leaf=tuple(int(v) for v in leaf))
            for w, leaf in zip(ids, reports)
        )
        self.metrics.record_cohort(len(ids))

    def register_worker(self, worker_id: int, location) -> None:
        """Single-worker convenience wrapper over :meth:`register_cohort`."""
        self.register_cohort([worker_id], [location])

    # ------------------------------------------------------------------ #
    # serving                                                             #
    # ------------------------------------------------------------------ #

    def submit_task(
        self,
        task_id: int,
        location,
        *,
        record_miss: bool = True,
        latency_offset: float = 0.0,
    ) -> int | None:
        """Encode, obfuscate and match one arriving task.

        Returns the assigned (global) worker id or ``None``; wall-clock
        matching latency and the reported assignment distance go into
        :attr:`metrics`. Two knobs serve the cluster's split-shard
        fallback chain, which tries several shards for one task:
        ``record_miss=False`` suppresses the unassigned metric on an
        empty pool (the miss is recorded once, on the primary, only when
        the whole chain fails), and ``latency_offset`` adds the time
        already spent probing earlier shards in the chain, so the
        recorded latency covers the task's full serving time.

        The obfuscation runs through the *same* vectorized kernel as
        cohort registration — :meth:`~repro.privacy.tree_mechanism
        .TreeMechanism.obfuscate_points_batch` with a batch of one — so
        the shard has exactly one sampler on its hot path (batch and
        single-event draws come from one stream with one draw layout,
        and there is no scalar twin to drift out of sync).
        """
        snapped = np.array([self.tree.snap_index.snap(location)], dtype=np.intp)
        obfuscated = self.mechanism.obfuscate_points_batch(snapped, self._rng)
        report = TaskReport(task_id=task_id, leaf=tuple(obfuscated[0].tolist()))
        start = time.perf_counter()
        found = self.server.submit_task_detailed(report)
        latency = time.perf_counter() - start + latency_offset
        if found is None:
            if record_miss:
                self.metrics.record_unassigned(latency)
            return None
        worker_id, level = found
        reported = tree_distance_for_level(level) / self.tree.metric_scale
        self.metrics.record_assignment(latency, reported)
        return worker_id

    def snapshot(self) -> ShardSnapshot:
        """Freeze this shard's metrics, ledger audit included."""
        return self.metrics.snapshot(epsilon=self.epsilon, ledger=self.ledger)

    # ------------------------------------------------------------------ #
    # checkpointing                                                       #
    # ------------------------------------------------------------------ #

    def export_state(self) -> dict:
        """JSON-ready dump of everything this shard is.

        The raw parts behind the cluster's versioned snapshot wire format
        (:mod:`repro.cluster.snapshot`): the published tree (via
        :func:`~repro.hst.serialize.hst_to_dict`), the privacy ledger, the
        matcher state, the metrics recorder, and the client-side RNG
        state. Restoring via :meth:`from_state` and replaying the same
        event suffix reproduces the exact assignments of an uninterrupted
        run — the RNG state makes the obfuscation draws bit-identical.
        """
        return {
            "shard_id": self.shard_id,
            "box": [self.box.xmin, self.box.ymin, self.box.xmax, self.box.ymax],
            "epsilon": self.epsilon,
            "tree": hst_to_dict(self.tree),
            "ledger": self.ledger.to_dict(),
            "server": self.server.export_state(),
            "metrics": self.metrics.to_dict(),
            "rng_state": self._rng.bit_generator.state,
        }

    def checkpoint_cursor(self) -> dict:
        """Pure-value cursor marking this shard's position for delta export.

        Captures only counts and tiny value markers (no object
        references), so a coordinator can hold cursors for checkpoints
        that are long gone and a worker can answer "what changed since
        checkpoint N" without having retained checkpoint N itself.
        """
        return {
            "ledger_hist": self.ledger.history_len(),
            "server": self.server.cursor(),
            "metrics": self.metrics.cursor(),
        }

    def export_delta(self, cursor: dict) -> dict:
        """Changes since ``cursor`` — the delta half of a v3 snapshot.

        Everything mutable on the serving path is append-only or
        dirty-tracked (ledger history, registrations, assignments,
        consumed matcher slots, reservoir suffixes), so the export is
        O(changes), not O(shard). The published tree, box and epsilon are
        immutable and never travel in a delta; the RNG state is a few
        integers and travels whole.
        """
        return {
            "rng_state": self._rng.bit_generator.state,
            "ledger": self.ledger.export_delta(cursor["ledger_hist"]),
            "server": self.server.export_delta(cursor["server"]),
            "metrics": self.metrics.export_delta(cursor["metrics"]),
        }

    @staticmethod
    def compose_state(base: dict, delta: dict) -> dict:
        """Fold an :meth:`export_delta` payload into an
        :meth:`export_state` payload, returning the child checkpoint's
        :meth:`export_state` form bit-identically."""
        return {
            "shard_id": base["shard_id"],
            "box": base["box"],
            "epsilon": base["epsilon"],
            "tree": base["tree"],
            "ledger": PrivacyBudgetLedger.compose_dict(
                base["ledger"], delta["ledger"]
            ),
            "server": MatchingServer.compose_dict(base["server"], delta["server"]),
            "metrics": ShardMetrics.compose_dict(base["metrics"], delta["metrics"]),
            "rng_state": delta["rng_state"],
        }

    @classmethod
    def from_state(cls, payload: dict) -> "ShardServer":
        """Reassemble a shard from :meth:`export_state` output.

        Unlike the constructor this never rebuilds the HST — the published
        tree is part of the state — so a restore is cheap enough for the
        failover hot path.
        """
        missing = {
            "shard_id",
            "box",
            "epsilon",
            "tree",
            "ledger",
            "server",
            "metrics",
            "rng_state",
        } - set(payload)
        if missing:
            raise ValueError(f"shard payload missing fields: {sorted(missing)}")
        shard = cls.__new__(cls)
        shard.shard_id = payload["shard_id"]
        shard.box = Box(*(float(v) for v in payload["box"]))
        shard.tree = hst_from_dict(payload["tree"], validate=False)
        # seed irrelevant: the snapshot state replaces it wholesale just
        # below — seeding keeps even the transient value deterministic
        rng = np.random.default_rng(0)
        state = dict(payload["rng_state"])
        expected = rng.bit_generator.state["bit_generator"]
        if state.get("bit_generator") != expected:
            raise ValueError(
                f"snapshot RNG is {state.get('bit_generator')!r}; this "
                f"runtime restores only {expected!r} streams"
            )
        rng.bit_generator.state = state
        shard._rng = rng
        shard.mechanism = TreeMechanism(
            shard.tree, float(payload["epsilon"]), seed=rng
        )
        shard.ledger = PrivacyBudgetLedger.from_dict(payload["ledger"])
        shard.server = MatchingServer.from_state(shard.tree, payload["server"])
        shard.metrics = ShardMetrics.from_dict(payload["metrics"])
        return shard
