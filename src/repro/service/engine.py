"""The sharded online assignment engine.

:class:`ShardedAssignmentEngine` is the subsystem's front door. It owns a
:class:`~repro.service.sharding.ShardMap` over the service region and one
:class:`~repro.service.shard.ShardServer` per cell, and consumes timed
worker/task events (usually via a
:class:`~repro.service.events.RequestQueue`):

* **worker arrivals** are routed to their shard and *buffered*; a shard's
  buffer is flushed through the vectorized batch-obfuscation path when it
  reaches ``batch_size``, when a task for that shard arrives (so no
  matchable worker is ever invisible to a later task), or at end of
  stream. Batching amortizes the per-report Python overhead — see
  ``benchmarks/bench_service_throughput.py`` for the measured gap;
* **task arrivals** flush their shard's pending cohort and are matched
  immediately by the shard's Algorithm-4 server.

The engine is deliberately synchronous and single-process: shards share
nothing, so lifting them onto threads/processes/hosts later is a transport
problem, not an algorithmic one — :mod:`repro.cluster` is exactly that
lift, running the same shards across worker processes with snapshot
checkpoints, crash failover and hot-shard balancing.

Concurrency contract: the engine itself never spawns threads, but it may
be *driven* by several (the :mod:`repro.runtime` scheduler runs requests
for different shards concurrently). That is safe iff callers serialize
per shard — same-shard calls never overlap — which is exactly the
scheduler's ordering-key guarantee. The state shared *across* shards —
the worker-id registry, the simulation clock and the assignment log — is
protected by an internal lock; registry and clock are commutative (set
union, running max), so cross-shard interleaving cannot change any
observable result, while the :attr:`ShardedAssignmentEngine.assignments`
*log order* follows decision completion and may interleave differently
than a serial replay (per-shard subsequences always match; callers that
need stream order use the API layer's sequence-numbered responses).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..geometry.box import Box
from ..geometry.points import as_points
from ..utils import ensure_rng, keyed_shard_seed, spawn_rng
from .events import RequestQueue, WorkerArrival
from .metrics import ServiceReport, build_report
from .shard import ShardServer
from .sharding import ShardMap

__all__ = ["ShardedAssignmentEngine"]


class ShardedAssignmentEngine:
    """Partitioned online assignment over a whole service region.

    Parameters
    ----------
    region:
        The full service region.
    shards:
        ``(nx, ny)`` shard lattice shape.
    grid_nx:
        Predefined-point lattice side *per shard*.
    epsilon:
        Geo-I budget per report.
    budget_capacity:
        Per-worker cumulative epsilon cap on each shard's ledger.
    batch_size:
        Worker-cohort buffer size per shard; ``1`` degenerates to
        per-worker (loop) obfuscation.
    seed:
        Root seed; each shard gets an independent child stream.
    seeding:
        How per-shard streams derive from ``seed``: ``"spawn"`` (default,
        sequential child generators — the engine's historical behavior)
        or ``"keyed"`` (``keyed_shard_seed(seed, f"s{i}")``, the cluster
        coordinator's convention). Keyed seeding makes a ``(1,1)``-or-any
        lattice engine grow bit-identical shard streams to a cluster run
        with the same root seed, which the API layer's backend
        conformance suite relies on; it requires an integer ``seed``.
    """

    def __init__(
        self,
        region: Box,
        shards: tuple[int, int] = (2, 2),
        grid_nx: int = 16,
        epsilon: float = 0.5,
        budget_capacity: float = 2.0,
        batch_size: int = 256,
        seed: int | np.random.Generator | None = None,
        seeding: str = "spawn",
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if seeding not in ("spawn", "keyed"):
            raise ValueError(f"seeding must be 'spawn' or 'keyed', got {seeding!r}")
        self.shard_map = ShardMap(region, *shards)
        self.batch_size = batch_size
        if seeding == "keyed":
            if not isinstance(seed, int):
                raise ValueError("keyed seeding needs an integer root seed")
            shard_seeds = [
                keyed_shard_seed(seed, f"s{i}")
                for i in range(self.shard_map.n_shards)
            ]
        else:
            shard_seeds = spawn_rng(ensure_rng(seed), self.shard_map.n_shards)
        self.shards = [
            ShardServer(
                shard_id,
                self.shard_map.shard_box(shard_id),
                grid_nx=grid_nx,
                epsilon=epsilon,
                budget_capacity=budget_capacity,
                seed=shard_seed,
            )
            for shard_id, shard_seed in enumerate(shard_seeds)
        ]
        self._pending: list[tuple[list[int], list]] = [
            ([], []) for _ in self.shards
        ]
        # engine-wide id registry: shards only see their own workers, so
        # cross-shard duplicates must be caught here or one worker id
        # could be assigned twice and budget-charged on two ledgers
        self._known_workers: set[int] = set()  # guarded-by: _shared_lock
        self._assignments: list[tuple[int, int]] = []  # guarded-by: _shared_lock
        # guards the cross-shard state (registry, clock) when different
        # shards' requests run on different threads; see module docstring
        self._shared_lock = threading.Lock()
        self.now = 0.0  # guarded-by: _shared_lock

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def assignments(self) -> list[tuple[int, int]]:
        """All ``(task_id, worker_id)`` pairs decided so far."""
        return list(self._assignments)

    # ------------------------------------------------------------------ #
    # ingestion                                                           #
    # ------------------------------------------------------------------ #

    def register_worker(self, worker_id: int, location) -> None:
        """Buffer one worker arrival on its shard's pending cohort."""
        worker_id = int(worker_id)
        self._claim_ids([worker_id])
        shard_id = self.shard_map.shard_of(location)
        ids, locs = self._pending[shard_id]
        ids.append(worker_id)
        locs.append(np.asarray(location, dtype=np.float64))
        if len(ids) >= self.batch_size:
            self.flush(shard_id)

    def register_workers(self, worker_ids, locations) -> None:
        """Route and buffer a whole worker wave (vectorized routing)."""
        locs = as_points(locations)
        ids = np.asarray(worker_ids, dtype=np.int64)
        if len(ids) != len(locs):
            raise ValueError("need one worker id per location")
        self._claim_ids(int(w) for w in ids)
        owners = self.shard_map.shard_of_many(locs)
        for shard_id in np.unique(owners):
            mask = owners == shard_id
            pend_ids, pend_locs = self._pending[shard_id]
            pend_ids.extend(int(w) for w in ids[mask])
            pend_locs.extend(locs[mask])
            if len(pend_ids) >= self.batch_size:
                self.flush(int(shard_id))

    def submit_task(self, task_id: int, location) -> int | None:
        """Route and match one task; flushes its shard's pending cohort."""
        shard_id = self.shard_map.shard_of(location)
        self.flush(shard_id)
        worker = self.shards[shard_id].submit_task(int(task_id), location)
        if worker is not None:
            with self._shared_lock:
                self._assignments.append((int(task_id), worker))
        return worker

    def observe_time(self, t: float) -> None:
        """Advance the simulation clock to ``t`` if it is later.

        The thread-safe way to stamp event times when requests for
        different shards execute concurrently: max is commutative, so any
        interleaving yields the same final clock as serial replay.
        """
        t = float(t)
        with self._shared_lock:
            if t > self.now:
                self.now = t

    def _claim_ids(self, worker_ids) -> None:
        """Reserve worker ids engine-wide; rejects any already seen."""
        ids = list(worker_ids)
        with self._shared_lock:
            dupes = [w for w in ids if w in self._known_workers]
            if len(set(ids)) != len(ids):
                dupes.extend([w for w in set(ids) if ids.count(w) > 1])
            if dupes:
                raise ValueError(
                    f"worker ids already registered with the engine: "
                    f"{sorted(set(dupes))[:5]}"
                )
            self._known_workers.update(ids)

    def flush(self, shard_id: int | None = None) -> None:
        """Push pending worker cohorts through batch obfuscation.

        ``None`` flushes every shard (end of stream).
        """
        targets = range(self.n_shards) if shard_id is None else [shard_id]
        for sid in targets:
            ids, locs = self._pending[sid]
            if not ids:
                continue
            self._pending[sid] = ([], [])
            self.shards[sid].register_cohort(ids, locs)

    # ------------------------------------------------------------------ #
    # checkpointing hooks                                                 #
    # ------------------------------------------------------------------ #

    def export_pending(self, shard_id: int) -> tuple[list[int], list]:
        """Copy of a shard's un-flushed cohort buffer ``(ids, locations)``.

        Part of a shard's checkpointable state: the buffer holds true
        locations that have not crossed the privacy boundary yet, so a
        snapshot that dropped it would silently lose registrations on
        restore. The versioned wire format wrapping this lives in
        :mod:`repro.cluster.snapshot`.
        """
        ids, locs = self._pending[shard_id]
        return list(ids), [np.array(loc, dtype=np.float64) for loc in locs]

    def install_shard(
        self, shard_id: int, shard: ShardServer, pending=None
    ) -> None:
        """Replace one shard in place with a restored :class:`ShardServer`.

        The restored shard's registered worker ids are folded into the
        engine-wide registry so duplicate detection keeps working across
        the restore.
        """
        if not 0 <= shard_id < self.n_shards:
            raise IndexError(f"shard {shard_id} outside [0, {self.n_shards})")
        self.shards[shard_id] = shard
        ids, locs = pending if pending is not None else ([], [])
        self._pending[shard_id] = (
            [int(w) for w in ids],
            [np.asarray(loc, dtype=np.float64) for loc in locs],
        )
        with self._shared_lock:
            self._known_workers.update(int(w) for w in ids)
            self._known_workers.update(
                int(w) for w in shard.server.registered_ids
            )

    # ------------------------------------------------------------------ #
    # event-driven operation                                              #
    # ------------------------------------------------------------------ #

    def process(self, events) -> None:
        """Drain an event stream, advancing the simulation clock.

        Accepts any iterable of events — typically a
        :class:`~repro.service.events.RequestQueue` — and dispatches each
        to :meth:`register_worker` / :meth:`submit_task`. Remaining worker
        buffers are flushed when the stream ends.
        """
        if not isinstance(events, RequestQueue):
            events = RequestQueue(events)
        for event in events:
            with self._shared_lock:
                self.now = event.time
            if isinstance(event, WorkerArrival):
                self.register_worker(event.worker_id, event.location)
            else:
                self.submit_task(event.task_id, event.location)
        self.flush()

    def run(self, events) -> ServiceReport:
        """Process a stream and return the timed service report."""
        start = time.perf_counter()
        self.process(events)
        wall = time.perf_counter() - start
        return self.report(wall_seconds=wall)

    # ------------------------------------------------------------------ #
    # telemetry                                                           #
    # ------------------------------------------------------------------ #

    def report(self, wall_seconds: float = float("nan")) -> ServiceReport:
        """Aggregate all shard metrics into one :class:`ServiceReport`."""
        self.flush()
        latencies = [v for s in self.shards for v in s.metrics.latencies_s]
        return build_report(
            (s.snapshot() for s in self.shards),
            latencies,
            (),
            wall_seconds=wall_seconds,
            sim_duration=self.now,
            distance_stats=(
                sum(s.metrics.reported_distances.total for s in self.shards),
                sum(s.metrics.reported_distances.count for s in self.shards),
            ),
        )
