"""Timed worker/task events and the engine's request queue.

The serving model is event-driven: a load generator (or a real gateway)
produces a time-ordered stream of :class:`WorkerArrival` and
:class:`TaskArrival` events, and the engine consumes them from a
:class:`RequestQueue`, advancing its simulation clock to each event's
timestamp. Workers sort before tasks at equal timestamps so a cohort that
arrives "just in time" is matchable by the task that follows it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..geometry.points import as_point

__all__ = ["WorkerArrival", "TaskArrival", "RequestQueue", "merge_event_streams"]


@dataclass(frozen=True)
class WorkerArrival:
    """A worker coming online at ``time`` at a true location.

    The true location never crosses the server boundary: the engine hands
    it to the *client-side* encoder of the worker's shard, and only the
    obfuscated report reaches the shard's matching server.
    """

    time: float
    worker_id: int
    location: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))


@dataclass(frozen=True)
class TaskArrival:
    """A task requested at ``time`` at a true location."""

    time: float
    task_id: int
    location: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))


def _sort_key(event) -> tuple[float, int]:
    # workers (kind 0) before tasks (kind 1) at equal timestamps
    return (event.time, 0 if isinstance(event, WorkerArrival) else 1)


def merge_event_streams(*streams) -> list:
    """Merge event iterables into one time-ordered list.

    A stable sort on ``(time, kind)``: ties keep generator order, and a
    worker arriving at the same instant as a task is registered first.
    """
    merged = [e for stream in streams for e in stream]
    merged.sort(key=_sort_key)
    return merged


class RequestQueue:
    """FIFO request queue feeding the assignment engine.

    The single-process stand-in for the ingress queue a deployed service
    would put in front of its shards (Kafka topic, SQS, ...). Events must
    be pushed in non-decreasing time order — the queue enforces it, since
    an out-of-order event would silently corrupt the simulation clock.
    """

    def __init__(self, events=()) -> None:
        self._events: deque = deque()
        self._last_time = -np.inf
        for event in events:
            self.push(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return self

    def __next__(self):
        if not self._events:
            raise StopIteration
        return self._events.popleft()

    def push(self, event) -> None:
        """Enqueue one event; rejects timestamps that go backwards."""
        if not isinstance(event, (WorkerArrival, TaskArrival)):
            raise TypeError(f"not a service event: {event!r}")
        if event.time < self._last_time:
            raise ValueError(
                f"event at t={event.time} arrives after t={self._last_time}; "
                "merge streams with merge_event_streams first"
            )
        self._last_time = event.time
        self._events.append(event)
