"""Stream-window plumbing shared by every pipelined layer.

Three small pieces that used to be re-implemented (or open-coded) in the
client's stream drain, the cluster backend's chunked batch dispatch and
the gateway tests:

* :func:`unwrap` / :func:`rewrap` — take a request out of its
  :class:`~repro.api.messages.StreamEnvelope` (if any) and put the
  response back under the same ``seq``;
* :class:`SequenceReorderer` — collects sequence-numbered responses in
  whatever order a pipelined transport produced them and releases them
  in stream order, detecting losses and duplicates. This is the piece
  that lets a client accept out-of-order gateway frames without ever
  yielding out-of-order results.

The api message types are imported lazily: :mod:`repro.runtime` is the
execution core the api layer builds *on*, so the dependency arrow at
import time points only one way (api -> runtime) and either package can
be imported first.
"""

from __future__ import annotations

__all__ = ["unwrap", "rewrap", "SequenceReorderer"]


def unwrap(item) -> tuple[int | None, object]:
    """``(seq, verb)`` for an envelope, ``(None, item)`` for a bare verb."""
    from ..api.messages import StreamEnvelope

    if isinstance(item, StreamEnvelope):
        return item.seq, item.item
    return None, item


def rewrap(seq: int | None, response):
    """Match :func:`unwrap`: envelope the response iff a ``seq`` came in."""
    if seq is None:
        return response
    from ..api.messages import StreamItemResult

    return StreamItemResult(seq=seq, item=response)


class SequenceReorderer:
    """Turn completion-order stream results back into stream order.

    Feed it :class:`~repro.api.messages.BatchResult`\\ s (or individual
    :class:`~repro.api.messages.StreamItemResult`\\ s) as they arrive —
    from any window, in any order — and :meth:`take_ready` hands back
    the unwrapped responses that are next in sequence. Duplicate and
    non-envelope results fail structurally; :meth:`finish` asserts the
    stream closed with no sequence gaps.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = int(start)
        self._buffered: dict[int, object] = {}

    @property
    def pending(self) -> int:
        """Responses held back waiting for an earlier sequence number."""
        return len(self._buffered)

    def absorb(self, result) -> None:
        """Accept one transport result: a batch of envelopes or one envelope."""
        from ..api.errors import ValidationFailed
        from ..api.messages import BatchResult, StreamItemResult

        items = result.items if isinstance(result, BatchResult) else (result,)
        for item in items:
            if not isinstance(item, StreamItemResult):
                raise ValidationFailed(
                    f"stream answered with {type(item).__name__}, "
                    "expected an envelope result"
                )
            seq = int(item.seq)
            # any duplicate is either still buffered or already released
            # (< next) — no history set needed, so a stream-long reorderer
            # holds O(in-flight window), not O(stream)
            if seq in self._buffered or seq < self._next:
                raise ValidationFailed(f"duplicate stream response for seq {seq}")
            self._buffered[seq] = item.item

    def take_ready(self) -> list:
        """Every response that is next in stream order, unwrapped."""
        ready: list = []
        while self._next in self._buffered:
            ready.append(self._buffered.pop(self._next))
            self._next += 1
        return ready

    def finish(self, expected_next: int) -> None:
        """Assert all of ``[start, expected_next)`` was absorbed and taken."""
        from ..api.errors import ValidationFailed

        if self._buffered or self._next != expected_next:
            missing = [
                s for s in range(self._next, expected_next) if s not in self._buffered
            ]
            raise ValidationFailed(
                f"stream lost responses for seq {missing[:5]}"
                if missing
                else f"stream still buffering {sorted(self._buffered)[:5]}"
            )
