"""repro.runtime — the shard-aware pipelined execution core.

One execution model, shared by every serving layer instead of being
re-implemented per layer:

* :class:`PipelineScheduler` — requests execute on a bounded pool under
  an *ordering key*: different keys run concurrently, equal keys stay
  FIFO, and ``None`` is a global barrier. Keys come from the backend's
  shard routing, so pipelined execution is bit-identical to the serial
  dispatch loops it replaced — per shard, nothing ever reorders;
* :class:`SequenceReorderer` / :func:`unwrap` / :func:`rewrap` — the
  stream-window bookkeeping (sequence-numbered envelopes in, in-order
  responses out) used by the client's pipelined stream mode and the
  cluster backend's chunked batch dispatch.

Consumers: :class:`repro.gateway.GatewayServer` schedules every framed
request through a :class:`PipelineScheduler` keyed by
``backend.ordering_key(request)``; :class:`repro.api.AssignmentClient`
pipelines stream windows over transports that support it; the
:class:`repro.api.backends.ClusterBackend` batch path shares the
envelope plumbing.
"""

from .scheduler import PipelineScheduler, default_worker_count
from .window import SequenceReorderer, rewrap, unwrap

__all__ = [
    "PipelineScheduler",
    "SequenceReorderer",
    "default_worker_count",
    "rewrap",
    "unwrap",
]
