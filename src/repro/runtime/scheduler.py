"""The shard-aware pipelined scheduler: the one execution core.

:class:`PipelineScheduler` executes submitted requests on a bounded
thread pool under one ordering rule, chosen so that pipelined execution
is *bit-identical to serial execution by construction*:

* every job carries an **ordering key**. Jobs with **different keys**
  may run concurrently; jobs with the **same key** run FIFO, one at a
  time, in submission order;
* a job with key ``None`` is a **global barrier**: it runs only after
  every previously submitted job has finished, runs alone, and every
  job submitted after it waits for it.

For the assignment service the key is the backend's shard routing
(:meth:`repro.api.backends.BackendBase.ordering_key`): shards share no
state, so per-key FIFO means each shard server consumes exactly the
per-shard subsequence it would have seen from a serial dispatch loop —
same cohort buffers, same RNG draws, same assignments. Barrier verbs
(``Flush``/``GetReport``, cluster checkpoints) map to ``None`` and keep
their observe-everything semantics.

Ordering is tracked with dependency chaining, not queue polling: each
key remembers its tail job, a barrier collects every live tail, and a
job is handed to the executor the moment its dependencies finish — a
failed dependency still releases its dependents (keys order requests,
they do not couple their outcomes). The scheduler never ties up a pool
thread on a job that cannot run yet, so ``max_workers=1`` degrades to
exactly the strict serial dispatch loop it replaced.

The chain itself rides *internal* gate futures that only the scheduler
resolves; the future a caller receives is a separate result handle.
Cancelling that handle (``asyncio.wrap_future`` does so when its task
is cancelled) therefore only abandons the *result* — the job still
executes exactly once in its slot, the ordering chain never skips, and
a barrier can never start while an abandoned predecessor is running.
Accepted work always runs: the same discipline the gateway applies to
a batch whose client vanished before reading the reply.

``max_in_flight`` bounds accepted-but-unfinished jobs; :meth:`submit`
blocks the producer beyond it, which is how backpressure propagates to
whatever feeds the scheduler (the gateway additionally bounds in-flight
work with its own asyncio semaphore so its event loop never blocks
here).
"""

from __future__ import annotations

import contextlib
import os
import threading
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor

__all__ = ["PipelineScheduler", "default_worker_count"]


def default_worker_count() -> int:
    """Pool size when the caller does not choose: enough threads that a
    few shards' worth of work can overlap (cluster-served jobs spend
    their time waiting on worker processes, so this may exceed the local
    core count without oversubscribing anything)."""
    return min(8, max(4, os.cpu_count() or 1))


class PipelineScheduler:
    """Keyed-FIFO / barrier scheduler over a bounded thread pool.

    Parameters
    ----------
    max_workers:
        Pool threads. ``None`` picks :func:`default_worker_count`; ``1``
        reproduces a strict serial dispatch loop (one thread, and the
        ordering rule is vacuous).
    max_in_flight:
        Cap on submitted-but-unfinished jobs; :meth:`submit` blocks when
        the cap is reached. ``None`` leaves admission to the caller.
    name:
        Thread-name prefix (debugging/profiling).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        max_in_flight: int | None = None,
        name: str = "repro-runtime",
    ) -> None:
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1 (or None), got {max_in_flight}"
            )
        self.max_workers = int(max_workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix=name
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._tails: dict[object, Future] = {}  # guarded-by: _lock, _idle
        self._barrier: Future | None = None  # guarded-by: _lock, _idle
        self._in_flight = 0  # guarded-by: _lock, _idle
        self._slots = (
            threading.BoundedSemaphore(int(max_in_flight))
            if max_in_flight is not None
            else None
        )
        self._shutdown = False  # guarded-by: _lock, _idle
        self._depths: dict[object, int] = {}  # guarded-by: _lock, _idle
        self.submitted = 0  # guarded-by: _lock, _idle
        self.barriers = 0  # guarded-by: _lock, _idle

    # ------------------------------------------------------------------ #
    # submission                                                          #
    # ------------------------------------------------------------------ #

    def submit(self, key, fn, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` under ``key``'s ordering.

        Returns a :class:`~concurrent.futures.Future` resolving to the
        call's result (or exception). Cancelling it abandons the result
        only — the job still executes in order (see module docstring).
        ``key=None`` is a global barrier. Blocks while ``max_in_flight``
        jobs are already pending.
        """
        if self._slots is not None:
            self._slots.acquire()
        done: Future = Future()  # the caller's result handle
        gate: Future = Future()  # internal chain marker; scheduler-owned
        try:
            with self._lock:
                if self._shutdown:
                    raise RuntimeError("scheduler has been shut down")
                self._in_flight += 1
                self.submitted += 1
                self._depths[key] = self._depths.get(key, 0) + 1
                if key is None:
                    self.barriers += 1
                    deps = list(self._tails.values())
                    if self._barrier is not None:
                        deps.append(self._barrier)
                    # everything after the barrier chains on the barrier
                    self._tails.clear()
                    self._barrier = gate
                else:
                    prev = self._tails.get(key, self._barrier)
                    deps = [] if prev is None else [prev]
                    self._tails[key] = gate
        except BaseException:
            if self._slots is not None:
                self._slots.release()
            raise
        self._when_ready(deps, done, gate, fn, args, kwargs, key)
        return done

    def _when_ready(self, deps, done, gate, fn, args, kwargs, key) -> None:
        """Hand the job to the pool once every dependency has finished.

        ``deps`` are internal gates: they resolve exactly when their
        job's execution (never merely its result handle) is over, and
        they order execution without propagating failure — a dep whose
        job raised still counts as finished.
        """
        if not deps:
            self._executor.submit(self._run, done, gate, fn, args, kwargs, key)
            return
        state = {"remaining": len(deps)}
        state_lock = threading.Lock()

        def dep_finished(_fut) -> None:
            with state_lock:
                state["remaining"] -= 1
                ready = state["remaining"] == 0
            if ready:
                self._executor.submit(self._run, done, gate, fn, args, kwargs, key)

        for dep in deps:
            # fires immediately if the dep already finished
            dep.add_done_callback(dep_finished)

    def _run(self, done: Future, gate: Future, fn, args, kwargs, key=None) -> None:
        try:
            result = fn(*args, **kwargs)
            exc = None
        except BaseException as caught:
            result, exc = None, caught
        # deliver the result unless the caller abandoned it (a cancelled
        # handle is already resolved; setting it would InvalidStateError)
        if not done.cancelled():
            with contextlib.suppress(InvalidStateError):
                if exc is not None:
                    done.set_exception(exc)
                else:
                    done.set_result(result)
        # the gate resolves only here — dependents (and barriers) can
        # never start while this execution is live, cancelled or not;
        # they were counted into in_flight at their submit(), so drain()
        # cannot conclude idle while a chain is being handed to the pool
        gate.set_result(None)
        if self._slots is not None:
            self._slots.release()
        with self._idle:
            self._in_flight -= 1
            depth = self._depths.get(key, 0) - 1
            if depth > 0:
                self._depths[key] = depth
            else:
                self._depths.pop(key, None)
            # retire this chain's tail once it has fully drained —
            # otherwise a long stream of one-shot keys (e.g. mesh shard
            # families that only ever see one cohort) grows _tails
            # without bound. Chaining on a resolved gate is a no-op, so
            # dropping the reference is safe; a later submit under the
            # same key simply starts a fresh chain.
            if self._tails.get(key) is gate:
                del self._tails[key]
            if self._barrier is gate:
                self._barrier = None
            if self._in_flight == 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    @property
    def in_flight(self) -> int:
        """Jobs submitted and not yet finished (queued or running)."""
        with self._lock:
            return self._in_flight

    def key_depths(self) -> dict:
        """Unfinished jobs per ordering key (barriers under ``None``).

        A live gauge of where the backlog sits — the mesh coordinator
        reads it to report per-family dispatch depth. Keys with no
        pending work are absent.
        """
        with self._lock:
            return dict(self._depths)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job has finished.

        Returns ``False`` on timeout (work still pending), ``True`` once
        idle. New submissions during the wait extend it.
        """
        with self._idle:
            return self._idle.wait_for(lambda: self._in_flight == 0, timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Refuse new work; optionally wait for in-flight jobs."""
        with self._lock:
            self._shutdown = True
        if wait:
            self.drain()
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "PipelineScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)
