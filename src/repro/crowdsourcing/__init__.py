"""Spatial crowdsourcing substrate: entities, clients, server, pipelines."""

from .clients import (
    encode_task_laplace,
    encode_task_tree,
    encode_worker_laplace,
    encode_worker_tree,
)
from .entities import Task, TaskReport, Worker, WorkerReport
from .pipelines import (
    PSDPipeline,
    MIN_DISTANCE_PIPELINES,
    SIZE_PIPELINES,
    Instance,
    LapGRPipeline,
    LapHGPipeline,
    PipelineOutcome,
    ProbPipeline,
    TBFPipeline,
    TBFSizePipeline,
)
from .server import MatchingServer, make_predefined_points, publish_tree

__all__ = [
    "Instance",
    "LapGRPipeline",
    "LapHGPipeline",
    "MIN_DISTANCE_PIPELINES",
    "MatchingServer",
    "PSDPipeline",
    "PipelineOutcome",
    "ProbPipeline",
    "SIZE_PIPELINES",
    "TBFPipeline",
    "TBFSizePipeline",
    "Task",
    "TaskReport",
    "Worker",
    "WorkerReport",
    "encode_task_laplace",
    "encode_task_tree",
    "encode_worker_laplace",
    "encode_worker_tree",
    "make_predefined_points",
    "publish_tree",
]
