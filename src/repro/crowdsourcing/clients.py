"""Client-side location encoding (the trusted half of the workflow).

The paper's workflow (Fig. 1) runs the privacy mechanism *on the user's
device*: a worker/task snaps its true location to the nearest published
predefined point and obfuscates the resulting leaf (TBF), or adds planar
Laplace noise to the raw coordinates (the baselines). Only the output of
these functions may cross into :mod:`repro.crowdsourcing.server`.
"""

from __future__ import annotations

import numpy as np

from ..hst.tree import HST
from ..privacy.laplace import PlanarLaplaceMechanism
from ..privacy.tree_mechanism import TreeMechanism
from .entities import Task, TaskReport, Worker, WorkerReport

__all__ = [
    "encode_worker_tree",
    "encode_task_tree",
    "encode_worker_laplace",
    "encode_task_laplace",
]


def encode_worker_tree(
    worker: Worker, tree: HST, mechanism: TreeMechanism, rng=None
) -> WorkerReport:
    """Snap a worker to its nearest predefined point and obfuscate the leaf."""
    leaf = tree.leaf_for_location(worker.location)
    return WorkerReport(
        worker_id=worker.worker_id,
        leaf=mechanism.obfuscate(leaf, rng),
        reachable_distance=worker.reachable_distance,
    )


def encode_task_tree(
    task: Task, tree: HST, mechanism: TreeMechanism, rng=None
) -> TaskReport:
    """Snap a task to its nearest predefined point and obfuscate the leaf."""
    leaf = tree.leaf_for_location(task.location)
    return TaskReport(task_id=task.task_id, leaf=mechanism.obfuscate(leaf, rng))


def encode_worker_laplace(
    worker: Worker, mechanism: PlanarLaplaceMechanism, rng=None
) -> WorkerReport:
    """Report a planar-Laplace-noised worker location."""
    noisy = np.asarray(mechanism.obfuscate(worker.location, rng))
    return WorkerReport(
        worker_id=worker.worker_id,
        noisy_location=noisy,
        reachable_distance=worker.reachable_distance,
    )


def encode_task_laplace(
    task: Task, mechanism: PlanarLaplaceMechanism, rng=None
) -> TaskReport:
    """Report a planar-Laplace-noised task location."""
    noisy = np.asarray(mechanism.obfuscate(task.location, rng))
    return TaskReport(task_id=task.task_id, noisy_location=noisy)
