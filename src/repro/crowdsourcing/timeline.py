"""Event-driven fleet simulation: dynamic workers and budgeted re-reports.

The paper's OMBM model consumes a worker permanently on assignment. Real
fleets recycle: a driver finishes a ride and comes back online *at the
drop-off location*, which requires a **fresh obfuscated report** — and
under sequential composition every report spends privacy budget. This
module extends the reproduction with that dynamic model:

* tasks arrive on a Poisson clock (:func:`poisson_arrivals`);
* a :class:`DynamicFleet` holds per-worker state (free/busy, current
  obfuscated leaf, cumulative ε spent via a
  :class:`~repro.privacy.budget.PrivacyBudgetLedger`);
* :class:`FleetSimulator` replays the stream: at each arrival it frees
  workers whose rides completed, matches the task with HST-Greedy on the
  current obfuscated leaves, moves the worker to the task site, and
  re-reports when the worker's budget allows — workers whose budget is
  exhausted keep their last reported leaf (stale but free, the standard
  composition-aware policy).

This is an extension beyond the paper (its evaluation is single-shot);
everything here runs on the paper's mechanism and matcher unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..geometry.points import as_points
from ..hst.tree import HST
from ..matching.leaf_trie import LeafTrie
from ..privacy.budget import PrivacyBudgetLedger
from ..privacy.tree_mechanism import TreeMechanism
from ..utils import ensure_rng

__all__ = ["poisson_arrivals", "RideRecord", "FleetTrace", "FleetSimulator"]


def poisson_arrivals(
    rate: float, horizon: float, seed=None
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on ``[0, horizon)``."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    rng = ensure_rng(seed)
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            break
        times.append(t)
    return np.asarray(times)


@dataclass(frozen=True)
class RideRecord:
    """One served (or dropped) request in a fleet trace."""

    task_id: int
    arrival_time: float
    worker: int | None
    pickup_distance: float = float("nan")
    completion_time: float = float("nan")

    @property
    def served(self) -> bool:
        return self.worker is not None


@dataclass
class FleetTrace:
    """Aggregate outcome of a fleet simulation."""

    records: list[RideRecord] = field(default_factory=list)
    reports_sent: int = 0
    reports_suppressed: int = 0

    @property
    def served(self) -> int:
        return sum(1 for r in self.records if r.served)

    @property
    def dropped(self) -> int:
        return len(self.records) - self.served

    @property
    def total_pickup_distance(self) -> float:
        return float(
            sum(r.pickup_distance for r in self.records if r.served)
        )

    @property
    def mean_pickup_distance(self) -> float:
        served = [r.pickup_distance for r in self.records if r.served]
        return float(np.mean(served)) if served else float("nan")


class FleetSimulator:
    """Replay a timed task stream against a recycling worker fleet.

    Parameters
    ----------
    tree, mechanism:
        The published HST and the ε-Geo-I mechanism (per report).
    worker_locations:
        Initial true worker coordinates.
    speed:
        Travel speed in coordinate units per time unit (pickup time =
        distance / speed).
    service_time:
        Fixed on-task duration added after pickup.
    budget_capacity:
        Total ε each worker may spend across reports; the initial
        registration spends one mechanism-ε, every relocation re-report
        another. ``None`` disables accounting (infinite budget).
    """

    def __init__(
        self,
        tree: HST,
        mechanism: TreeMechanism,
        worker_locations,
        speed: float = 10.0,
        service_time: float = 1.0,
        budget_capacity: float | None = None,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        if service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time}")
        self.tree = tree
        self.mechanism = mechanism
        self.speed = speed
        self.service_time = service_time
        self._initial_locations = as_points(worker_locations)
        self._ledger = (
            PrivacyBudgetLedger(budget_capacity)
            if budget_capacity is not None
            else None
        )

    def run(self, task_locations, arrival_times, seed=None) -> FleetTrace:
        """Simulate the stream; tasks and times must align."""
        tasks = as_points(task_locations)
        times = np.asarray(arrival_times, dtype=np.float64)
        if times.shape != (len(tasks),):
            raise ValueError("need one arrival time per task")
        if np.any(np.diff(times) < 0):
            raise ValueError("arrival times must be non-decreasing")
        rng = ensure_rng(seed)
        trace = FleetTrace()

        eps = self.mechanism.epsilon
        n = len(self._initial_locations)
        true_location = self._initial_locations.copy()
        trie = LeafTrie(self.tree.depth, self.tree.branching)
        reported: dict[int, tuple] = {}
        for worker in range(n):
            leaf = self.tree.leaf_for_location(true_location[worker])
            if self._ledger is not None:
                self._ledger.spend(worker, eps)
            report = self.mechanism.obfuscate(leaf, rng)
            trie.insert(report, worker)
            reported[worker] = report
            trace.reports_sent += 1

        busy: list[tuple[float, int]] = []  # (free_time, worker) heap
        for task_id, (loc, now) in enumerate(zip(tasks, times)):
            self._release_due(busy, now, trie, reported, true_location, rng, trace)
            task_leaf = self.tree.leaf_for_location(loc)
            task_report = self.mechanism.obfuscate(task_leaf, rng)
            found = trie.pop_nearest(task_report)
            if found is None:
                trace.records.append(
                    RideRecord(task_id=task_id, arrival_time=float(now), worker=None)
                )
                continue
            worker, _level = found
            pickup = float(np.hypot(*(true_location[worker] - loc)))
            done = float(now) + pickup / self.speed + self.service_time
            true_location[worker] = loc  # the worker ends at the task site
            heapq.heappush(busy, (done, worker))
            trace.records.append(
                RideRecord(
                    task_id=task_id,
                    arrival_time=float(now),
                    worker=worker,
                    pickup_distance=pickup,
                    completion_time=done,
                )
            )
        return trace

    # ------------------------------------------------------------------ #
    # internals                                                            #
    # ------------------------------------------------------------------ #

    def _release_due(
        self, busy, now, trie, reported, true_location, rng, trace
    ) -> None:
        """Return workers whose rides completed; re-report when budget
        allows, otherwise re-enter under the stale (free) report."""
        eps = self.mechanism.epsilon
        while busy and busy[0][0] <= now:
            _, worker = heapq.heappop(busy)
            if self._ledger is None or self._ledger.can_spend(worker, eps):
                if self._ledger is not None:
                    self._ledger.spend(worker, eps)
                leaf = self.tree.leaf_for_location(true_location[worker])
                report = self.mechanism.obfuscate(leaf, rng)
                reported[worker] = report
                trace.reports_sent += 1
            else:
                report = reported[worker]
                trace.reports_suppressed += 1
            trie.insert(report, worker)
