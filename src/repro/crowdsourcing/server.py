"""The untrusted server's side of the workflow (paper Fig. 1, steps 1 & 4).

The server owns two jobs:

1. **Publication** — pick the predefined point set for the service region
   and build/publish the HST over it (:func:`publish_tree`). Both are
   public artifacts; they encode no user data.
2. **Assignment** — accept obfuscated reports and match each arriving task
   immediately (:class:`MatchingServer`). The server types only accept
   :class:`~repro.crowdsourcing.entities.WorkerReport` /
   :class:`~repro.crowdsourcing.entities.TaskReport` payloads, so true
   locations cannot reach this module by construction.

The experiment pipelines inline this logic for speed; this class is the
reference implementation that the examples and integration tests exercise.
"""

from __future__ import annotations

from itertools import islice

import numpy as np

from ..geometry.box import Box
from ..geometry.grid import uniform_grid
from ..hst.build import build_hst
from ..hst.tree import HST
from ..matching.hst_greedy import HSTGreedyMatcher
from ..matching.types import Assignment, MatchingResult
from .entities import TaskReport, WorkerReport

__all__ = ["make_predefined_points", "publish_tree", "MatchingServer"]


def make_predefined_points(region: Box, grid_nx: int, grid_ny: int | None = None):
    """The server's predefined point set: a uniform lattice over the region.

    A lattice keeps the announcement compact (two integers and a box) and
    bounds the snapping error by half a cell diagonal; the paper leaves the
    choice of predefined points open.
    """
    return uniform_grid(region, grid_nx, grid_ny)


def publish_tree(
    region: Box,
    grid_nx: int = 32,
    grid_ny: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> HST:
    """Construct the HST the server publishes for a service region."""
    return build_hst(make_predefined_points(region, grid_nx, grid_ny), seed=seed)


class MatchingServer:
    """Online assignment over obfuscated HST reports.

    Workers register up front; tasks arrive one by one through
    :meth:`submit_task` and are matched immediately (Algorithm 4). The
    accumulated matching is exposed as :attr:`result` with *reported* leaf
    distances only — converting to true travel distances requires the true
    coordinates, which the server never has (pipelines do that outside).

    The paper's OMBM model fixes the worker pool before the first task, so
    registration closes once tasks arrive. The serving layer
    (:mod:`repro.service`) relaxes that: with
    ``allow_late_registration=True`` workers may keep joining between
    tasks, each insertion going straight into the live matcher trie.
    """

    def __init__(self, tree: HST, *, allow_late_registration: bool = False) -> None:
        self.tree = tree
        self.allow_late_registration = allow_late_registration
        self._worker_reports: dict[int, WorkerReport] = {}
        self._ids: list[int] = []
        self._matcher: HSTGreedyMatcher | None = None
        # append-only consumption log (slot per assignment) and the
        # registration count at lazy matcher build — the two facts delta
        # checkpoints need that the trie itself doesn't keep
        self._consumed: list[int] = []
        self._built_at: int | None = None
        self.result = MatchingResult()

    def register_worker(self, report: WorkerReport) -> None:
        """Accept a worker's obfuscated registration."""
        if not isinstance(report, WorkerReport):
            raise TypeError("server only accepts WorkerReport payloads")
        if report.leaf is None:
            raise ValueError("the HST server needs leaf-encoded reports")
        if self._matcher is not None and not self.allow_late_registration:
            raise RuntimeError("registration is closed once tasks arrive")
        if report.worker_id in self._worker_reports:
            raise ValueError(f"worker {report.worker_id} already registered")
        self._worker_reports[report.worker_id] = report
        if self._matcher is not None:
            self._matcher.add_worker(report.leaf)
            self._ids.append(report.worker_id)

    def register_workers(self, reports) -> None:
        """Accept a whole cohort of worker registrations at once."""
        for report in reports:
            self.register_worker(report)

    @property
    def registered_workers(self) -> int:
        return len(self._worker_reports)

    @property
    def registered_ids(self) -> list[int]:
        """Worker ids with a registration on record, registration-ordered."""
        return list(self._worker_reports)

    def is_registered(self, worker_id: int) -> bool:
        """Whether ``worker_id`` has a registration on record."""
        return worker_id in self._worker_reports

    @property
    def available_workers(self) -> int:
        """Workers registered and not yet consumed by an assignment."""
        if self._matcher is None:
            return len(self._worker_reports)
        return self._matcher.available

    # ------------------------------------------------------------------ #
    # serving (Algorithm 4)                                               #
    # ------------------------------------------------------------------ #

    def submit_task(self, report: TaskReport) -> int | None:
        """Match an arriving task to the nearest available worker's report.

        Returns the assigned worker id (or ``None`` if the pool is empty)
        and records the pair in :attr:`result`. A thin wrapper: the whole
        matching path — validation, lazy matcher build, assignment and
        result bookkeeping — lives in :meth:`submit_task_detailed`, which
        is the single implementation.
        """
        found = self.submit_task_detailed(report)
        return None if found is None else found[0]

    def submit_task_detailed(self, report: TaskReport) -> tuple[int, int] | None:
        """Like :meth:`submit_task`, but returns ``(worker_id, lca_level)``.

        The one and only submission path (:meth:`submit_task` delegates
        here). The LCA level of the matched pair determines the *reported*
        tree distance — the only distance signal the server legitimately
        has — which the serving layer converts to metric units for its
        assignment-distance telemetry.
        """
        if not isinstance(report, TaskReport):
            raise TypeError("server only accepts TaskReport payloads")
        if report.leaf is None:
            raise ValueError("the HST server needs leaf-encoded reports")
        if self._matcher is None:
            ids = sorted(self._worker_reports)
            self._ids = ids
            self._built_at = len(ids)
            self._matcher = HSTGreedyMatcher(
                self.tree.depth,
                self.tree.branching,
                [self._worker_reports[i].leaf for i in ids],
            )
        found = self._matcher.assign(report.leaf)
        if found is None:
            self.result.unassigned_tasks.append(report.task_id)
            return None
        slot, level = found
        self._consumed.append(slot)
        worker_id = self._ids[slot]
        self.result.assignments.append(
            Assignment(task=report.task_id, worker=worker_id)
        )
        return worker_id, level

    # ------------------------------------------------------------------ #
    # checkpointing                                                       #
    # ------------------------------------------------------------------ #

    def export_state(self) -> dict:
        """JSON-ready matcher state for shard snapshots.

        Captures registrations (in registration order), the slot-id table
        and consumed slots of the live matcher trie, and the accumulated
        result — everything :meth:`from_state` needs to resume serving
        with identical assignment decisions (the trie's tie-breaking is
        insertion-ordered, and slots are inserted in increasing order, so
        rebuilding all slots and removing the consumed ones reproduces the
        exact structure).
        """
        # every unavailable slot got there via exactly one assignment (the
        # serving path never releases), so the consumption log *is* the
        # consumed set — sorted to keep the historical export shape
        consumed = sorted(self._consumed)
        return {
            "allow_late_registration": self.allow_late_registration,
            "reports": [
                [r.worker_id, list(r.leaf)]
                for r in self._worker_reports.values()
            ],
            "slot_ids": None if self._matcher is None else list(self._ids),
            "consumed_slots": consumed,
            "assignments": [
                [a.task, a.worker] for a in self.result.assignments
            ],
            "unassigned_tasks": list(self.result.unassigned_tasks),
        }

    def cursor(self) -> dict:
        """Pure-value checkpoint cursor: counts of the append-only logs
        plus whether the matcher trie existed at cursor time."""
        return {
            "reports": len(self._worker_reports),
            "consumed": len(self._consumed),
            "assignments": len(self.result.assignments),
            "unassigned": len(self.result.unassigned_tasks),
            "matcher": self._matcher is not None,
        }

    def export_delta(self, cursor: dict) -> dict:
        """Changes since ``cursor`` (non-destructive).

        Registrations, assignments, unassigned tasks and the consumption
        log are all append-only, so each travels as a suffix. ``built_at``
        is the registration count at lazy matcher build when the build
        happened inside this window (the composer needs it to reproduce
        the sorted-then-appended slot table), else ``None``.
        """
        suffix = islice(self._worker_reports.values(), int(cursor["reports"]), None)
        built_at = None
        if not cursor["matcher"] and self._matcher is not None:
            built_at = self._built_at
        return {
            "reports": [[r.worker_id, list(r.leaf)] for r in suffix],
            "built_at": built_at,
            "consumed": list(self._consumed[int(cursor["consumed"]) :]),
            "assignments": [
                [a.task, a.worker]
                for a in self.result.assignments[int(cursor["assignments"]) :]
            ],
            "unassigned_tasks": list(
                self.result.unassigned_tasks[int(cursor["unassigned"]) :]
            ),
        }

    @staticmethod
    def compose_dict(base: dict, delta: dict) -> dict:
        """Fold an :meth:`export_delta` payload into an
        :meth:`export_state` payload, returning the child checkpoint's
        :meth:`export_state` form.

        Slot-table rule: if the parent already had a matcher, every new
        registration was appended to the table in registration order; if
        the matcher was built inside the window, the table is the sorted
        prefix of the first ``built_at`` worker ids followed by the rest
        in registration order — exactly the live build's layout.
        """
        reports = [list(entry) for entry in base["reports"]]
        reports.extend(list(entry) for entry in delta["reports"])
        if base["slot_ids"] is not None:
            slot_ids = list(base["slot_ids"])
            slot_ids.extend(wid for wid, _ in delta["reports"])
        elif delta["built_at"] is not None:
            wids = [wid for wid, _ in reports]
            built_at = int(delta["built_at"])
            slot_ids = sorted(wids[:built_at]) + wids[built_at:]
        else:
            slot_ids = None
        consumed = sorted(
            {int(s) for s in base["consumed_slots"]}
            | {int(s) for s in delta["consumed"]}
        )
        return {
            "allow_late_registration": base["allow_late_registration"],
            "reports": reports,
            "slot_ids": slot_ids,
            "consumed_slots": consumed,
            "assignments": [list(entry) for entry in base["assignments"]]
            + [list(entry) for entry in delta["assignments"]],
            "unassigned_tasks": list(base["unassigned_tasks"])
            + list(delta["unassigned_tasks"]),
        }

    @classmethod
    def from_state(cls, tree: HST, payload: dict) -> "MatchingServer":
        """Rebuild a server exported by :meth:`export_state` over ``tree``."""
        missing = {
            "allow_late_registration",
            "reports",
            "slot_ids",
            "consumed_slots",
            "assignments",
            "unassigned_tasks",
        } - set(payload)
        if missing:
            raise ValueError(f"server payload missing fields: {sorted(missing)}")
        server = cls(
            tree,
            allow_late_registration=bool(payload["allow_late_registration"]),
        )
        for wid, leaf in payload["reports"]:
            wid = int(wid)
            server._worker_reports[wid] = WorkerReport(
                worker_id=wid, leaf=tuple(int(v) for v in leaf)
            )
        slot_ids = payload["slot_ids"]
        if slot_ids is not None:
            ids = [int(i) for i in slot_ids]
            if set(ids) != set(server._worker_reports):
                raise ValueError("slot table inconsistent with registrations")
            server._ids = ids
            server._matcher = HSTGreedyMatcher(
                tree.depth,
                tree.branching,
                [server._worker_reports[i].leaf for i in ids],
            )
            for slot in payload["consumed_slots"]:
                server._matcher.remove_worker(int(slot))
        server._consumed = [int(s) for s in payload["consumed_slots"]]
        server.result = MatchingResult(
            assignments=[
                Assignment(task=int(t), worker=int(w))
                for t, w in payload["assignments"]
            ],
            unassigned_tasks=[int(t) for t in payload["unassigned_tasks"]],
        )
        return server

