"""The three parties of the interaction model (paper Definitions 1-3).

Workers and tasks are coordinate carriers; the server is deliberately blind:
it can only be handed *reports* (obfuscated leaves or noisy coordinates),
never true locations. The type layer below enforces that separation so a
pipeline cannot accidentally leak true coordinates into a matcher — matchers
accept :class:`WorkerReport`/:class:`TaskReport` payloads only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.points import as_point
from ..hst.paths import Path

__all__ = ["Worker", "Task", "WorkerReport", "TaskReport"]


@dataclass(frozen=True)
class Worker:
    """A crowd worker: an id, a true location and (for the matching-size
    case study) a reachable distance."""

    worker_id: int
    location: np.ndarray
    reachable_distance: float = float("inf")

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))
        if self.reachable_distance < 0:
            raise ValueError("reachable distance must be non-negative")

    def can_reach(self, task: "Task") -> bool:
        """Whether this worker's true location is within its reachable
        distance of the task's true location."""
        d = float(np.hypot(*(self.location - task.location)))
        return d <= self.reachable_distance


@dataclass(frozen=True)
class Task:
    """A spatial task: an id and a true location."""

    task_id: int
    location: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))


@dataclass(frozen=True)
class WorkerReport:
    """What a worker actually sends to the untrusted server.

    Exactly one of ``leaf`` (tree mechanisms) or ``noisy_location``
    (Laplace mechanisms) is set; the true location never appears here.
    """

    worker_id: int
    leaf: Path | None = None
    noisy_location: np.ndarray | None = None
    reachable_distance: float = float("inf")

    def __post_init__(self) -> None:
        if (self.leaf is None) == (self.noisy_location is None):
            raise ValueError("a report carries exactly one location encoding")


@dataclass(frozen=True)
class TaskReport:
    """What a task submission actually sends to the untrusted server."""

    task_id: int
    leaf: Path | None = None
    noisy_location: np.ndarray | None = None

    def __post_init__(self) -> None:
        if (self.leaf is None) == (self.noisy_location is None):
            raise ValueError("a report carries exactly one location encoding")
