"""End-to-end algorithm pipelines: the compared systems of Sec. IV.

Each pipeline wires one privacy mechanism to one online matcher and runs a
full arrival sequence, producing the paper's three metrics:

* ``total distance`` — true Euclidean distance summed over (successful)
  assignments. Assignment decisions only ever see obfuscated data; true
  coordinates re-enter exclusively for metric computation, mirroring the
  paper's evaluation.
* ``running time`` — accumulated wall-clock time of the per-task region
  (encode the arriving task, assign it), matching the paper's "from
  receiving a task to the completion of the assignment". One-time setup
  (HST construction, worker registration) is reported separately.
* ``memory`` — peak traced allocation over the whole run.

Minimum-total-distance pipelines (Figs. 6-7): :class:`TBFPipeline`,
:class:`LapGRPipeline`, :class:`LapHGPipeline`.
Matching-size case study (Fig. 8): :class:`TBFSizePipeline`,
:class:`ProbPipeline`. Their semantics: the server proposes a worker from
obfuscated data; the assignment *succeeds* iff the worker's true distance
to the task is within its reachable radius; on failure the task is lost but
the worker stays available (it never traveled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.box import Box
from ..geometry.points import as_points
from ..hst.build import build_hst
from ..hst.tree import HST
from ..matching.euclidean_greedy import EuclideanGreedyMatcher
from ..matching.hst_greedy import HSTGreedyMatcher
from ..matching.prob_assign import NoiseDifferencePool, ProbMatcher
from ..matching.reachability import estimate_stretch
from ..matching.types import Assignment, MatchingResult
from ..privacy.laplace import PlanarLaplaceMechanism
from ..privacy.tree_mechanism import TreeMechanism
from ..utils import Stopwatch, ensure_rng, measure_peak_memory
from .server import make_predefined_points

__all__ = [
    "Instance",
    "PipelineOutcome",
    "TBFPipeline",
    "LapGRPipeline",
    "LapHGPipeline",
    "TBFSizePipeline",
    "PSDPipeline",
    "ProbPipeline",
    "MIN_DISTANCE_PIPELINES",
    "SIZE_PIPELINES",
]


@dataclass(frozen=True)
class Instance:
    """One POMBM problem instance.

    Tasks arrive in row order of ``task_locations`` (workloads pre-shuffle
    per the random-order model); ``radii`` is only used by the
    matching-size pipelines.
    """

    region: Box
    worker_locations: np.ndarray
    task_locations: np.ndarray
    epsilon: float
    radii: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "worker_locations", as_points(self.worker_locations)
        )
        object.__setattr__(self, "task_locations", as_points(self.task_locations))
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.radii is not None:
            r = np.asarray(self.radii, dtype=np.float64)
            if r.shape != (len(self.worker_locations),):
                raise ValueError("need one radius per worker")
            object.__setattr__(self, "radii", r)

    @property
    def n_workers(self) -> int:
        return len(self.worker_locations)

    @property
    def n_tasks(self) -> int:
        return len(self.task_locations)


@dataclass
class PipelineOutcome:
    """Metrics of one pipeline run on one instance."""

    algorithm: str
    matching: MatchingResult
    assignment_seconds: float
    setup_seconds: float
    peak_mib: float
    details: dict = field(default_factory=dict)

    @property
    def total_distance(self) -> float:
        return self.matching.total_distance

    @property
    def matching_size(self) -> int:
        return self.matching.size


def _register_workers(tree, mechanism, locations, rng) -> list:
    """Snap and obfuscate all worker locations at once.

    Uses the vectorized batch sampler (same distribution as the walk) so
    registering 10^5 workers costs milliseconds, not seconds.
    """
    idx = tree.snap_index.snap_many(locations)
    obfuscated = mechanism.obfuscate_batch(tree.paths[idx], rng)
    return [tuple(int(v) for v in row) for row in obfuscated]


class _BasePipeline:
    """Shared HST-publication plumbing for the pipelines that need a tree."""

    name = "base"

    def __init__(self, grid_nx: int = 32, tree: HST | None = None) -> None:
        if grid_nx < 1:
            raise ValueError(f"grid_nx must be >= 1, got {grid_nx}")
        self.grid_nx = grid_nx
        self._fixed_tree = tree

    def _publish_tree(self, region: Box, rng) -> HST:
        if self._fixed_tree is not None:
            return self._fixed_tree
        return build_hst(make_predefined_points(region, self.grid_nx), seed=rng)

    @staticmethod
    def _true_distance(instance: Instance, task: int, worker: int) -> float:
        diff = instance.task_locations[task] - instance.worker_locations[worker]
        return float(np.hypot(diff[0], diff[1]))


class TBFPipeline(_BasePipeline):
    """The paper's Tree-Based Framework: tree mechanism + HST-Greedy."""

    name = "TBF"

    def __init__(
        self,
        grid_nx: int = 32,
        tree: HST | None = None,
        sampler: str = "walk",
    ) -> None:
        super().__init__(grid_nx, tree)
        self.sampler = sampler

    def run(self, instance: Instance, seed=None) -> PipelineOutcome:
        rng = ensure_rng(seed)
        watch = Stopwatch()
        mem: dict = {}
        with measure_peak_memory(mem):
            setup = Stopwatch()
            with setup.timed():
                tree = self._publish_tree(instance.region, rng)
                mechanism = TreeMechanism(
                    tree, instance.epsilon, method=self.sampler
                )
                worker_reports = _register_workers(
                    tree, mechanism, instance.worker_locations, rng
                )
                matcher = HSTGreedyMatcher.for_tree(tree, worker_reports)
            matching = MatchingResult()
            for task_id in range(instance.n_tasks):
                with watch.timed():
                    leaf = tree.leaf_for_location(
                        instance.task_locations[task_id]
                    )
                    report = mechanism.obfuscate(leaf, rng)
                    found = matcher.assign(report)
                if found is None:
                    matching.unassigned_tasks.append(task_id)
                    continue
                worker, _level = found
                matching.assignments.append(
                    Assignment(
                        task=task_id,
                        worker=worker,
                        distance=self._true_distance(instance, task_id, worker),
                    )
                )
        return PipelineOutcome(
            algorithm=self.name,
            matching=matching,
            assignment_seconds=watch.elapsed,
            setup_seconds=setup.elapsed,
            peak_mib=mem["peak_mib"],
            details={"tree_depth": tree.depth, "branching": tree.branching},
        )


class LapGRPipeline(_BasePipeline):
    """Baseline Lap-GR: planar Laplace + Euclidean greedy."""

    name = "Lap-GR"

    def __init__(self, naive_scan: bool = False) -> None:
        super().__init__(grid_nx=1)
        self.naive_scan = naive_scan

    def run(self, instance: Instance, seed=None) -> PipelineOutcome:
        rng = ensure_rng(seed)
        watch = Stopwatch()
        mem: dict = {}
        with measure_peak_memory(mem):
            setup = Stopwatch()
            with setup.timed():
                laplace = PlanarLaplaceMechanism(
                    instance.epsilon, region=instance.region
                )
                noisy_workers = laplace.obfuscate_many(
                    instance.worker_locations, rng
                )
                matcher = EuclideanGreedyMatcher(
                    noisy_workers, naive=self.naive_scan
                )
            matching = MatchingResult()
            for task_id in range(instance.n_tasks):
                with watch.timed():
                    noisy_task = laplace.obfuscate(
                        instance.task_locations[task_id], rng
                    )
                    found = matcher.assign(noisy_task)
                if found is None:
                    matching.unassigned_tasks.append(task_id)
                    continue
                worker, _ = found
                matching.assignments.append(
                    Assignment(
                        task=task_id,
                        worker=worker,
                        distance=self._true_distance(instance, task_id, worker),
                    )
                )
        return PipelineOutcome(
            algorithm=self.name,
            matching=matching,
            assignment_seconds=watch.elapsed,
            setup_seconds=setup.elapsed,
            peak_mib=mem["peak_mib"],
        )


class LapHGPipeline(_BasePipeline):
    """Baseline Lap-HG: planar Laplace + HST-Greedy over snapped noise.

    Noisy coordinates are snapped to the published predefined points so
    that HST-Greedy can run on leaves, as in Meyerson et al.'s HST matcher
    applied to Laplace-obfuscated data.
    """

    name = "Lap-HG"

    def run(self, instance: Instance, seed=None) -> PipelineOutcome:
        rng = ensure_rng(seed)
        watch = Stopwatch()
        mem: dict = {}
        with measure_peak_memory(mem):
            setup = Stopwatch()
            with setup.timed():
                tree = self._publish_tree(instance.region, rng)
                laplace = PlanarLaplaceMechanism(
                    instance.epsilon, region=instance.region
                )
                noisy_workers = laplace.obfuscate_many(
                    instance.worker_locations, rng
                )
                worker_leaves = tree.leaves_for_locations(noisy_workers)
                matcher = HSTGreedyMatcher.for_tree(tree, worker_leaves)
            matching = MatchingResult()
            for task_id in range(instance.n_tasks):
                with watch.timed():
                    noisy_task = laplace.obfuscate(
                        instance.task_locations[task_id], rng
                    )
                    leaf = tree.leaf_for_location(noisy_task)
                    found = matcher.assign(leaf)
                if found is None:
                    matching.unassigned_tasks.append(task_id)
                    continue
                worker, _level = found
                matching.assignments.append(
                    Assignment(
                        task=task_id,
                        worker=worker,
                        distance=self._true_distance(instance, task_id, worker),
                    )
                )
        return PipelineOutcome(
            algorithm=self.name,
            matching=matching,
            assignment_seconds=watch.elapsed,
            setup_seconds=setup.elapsed,
            peak_mib=mem["peak_mib"],
            details={"tree_depth": tree.depth, "branching": tree.branching},
        )


class TBFSizePipeline(_BasePipeline):
    """TBF variant for the matching-size objective (paper Sec. IV-C).

    The server proposes the nearest available worker on the HST whose
    stretch-calibrated tree budget covers the obfuscated tree distance
    ("the nearest reachable worker on the HST"); if no worker passes the
    budget filter it falls back to the plain nearest worker — under the
    release-on-failure semantics a failed proposal costs nothing beyond the
    task itself, so proposing dominates abstaining. Success is then decided
    by the true locations; a failed proposal returns the worker to the pool.
    """

    name = "TBF"

    def __init__(
        self,
        grid_nx: int = 32,
        tree: HST | None = None,
        sampler: str = "walk",
    ) -> None:
        super().__init__(grid_nx, tree)
        self.sampler = sampler

    def run(self, instance: Instance, seed=None) -> PipelineOutcome:
        if instance.radii is None:
            raise ValueError("matching-size pipelines need per-worker radii")
        rng = ensure_rng(seed)
        watch = Stopwatch()
        mem: dict = {}
        with measure_peak_memory(mem):
            setup = Stopwatch()
            with setup.timed():
                tree = self._publish_tree(instance.region, rng)
                mechanism = TreeMechanism(
                    tree, instance.epsilon, method=self.sampler
                )
                stretch = estimate_stretch(tree, seed=rng)
                budgets = (
                    instance.radii * stretch * tree.metric_scale
                )
                worker_reports = _register_workers(
                    tree, mechanism, instance.worker_locations, rng
                )
                matcher = HSTGreedyMatcher.for_tree(tree, worker_reports)
            matching = MatchingResult()
            for task_id in range(instance.n_tasks):
                with watch.timed():
                    leaf = tree.leaf_for_location(
                        instance.task_locations[task_id]
                    )
                    report = mechanism.obfuscate(leaf, rng)
                    found = matcher.assign_reachable_preferring_radius(
                        report, budgets, instance.radii
                    )
                if found is None:
                    matching.unassigned_tasks.append(task_id)
                    continue
                worker, _level = found
                distance = self._true_distance(instance, task_id, worker)
                success = distance <= instance.radii[worker]
                matching.assignments.append(
                    Assignment(
                        task=task_id,
                        worker=worker,
                        distance=distance,
                        success=success,
                    )
                )
                if not success:
                    matcher.release(worker, worker_reports[worker])
        return PipelineOutcome(
            algorithm=self.name,
            matching=matching,
            assignment_seconds=watch.elapsed,
            setup_seconds=setup.elapsed,
            peak_mib=mem["peak_mib"],
            details={
                "tree_depth": tree.depth,
                "branching": tree.branching,
                "stretch": stretch,
            },
        )


class ProbPipeline(_BasePipeline):
    """The ``Prob`` baseline: Laplace + probability-based assignment."""

    name = "Prob"

    def __init__(
        self,
        pool_samples: int = 2048,
        min_probability: float = 0.05,
    ) -> None:
        super().__init__(grid_nx=1)
        self.pool_samples = pool_samples
        self.min_probability = min_probability

    def run(self, instance: Instance, seed=None) -> PipelineOutcome:
        if instance.radii is None:
            raise ValueError("matching-size pipelines need per-worker radii")
        rng = ensure_rng(seed)
        watch = Stopwatch()
        mem: dict = {}
        with measure_peak_memory(mem):
            setup = Stopwatch()
            with setup.timed():
                laplace = PlanarLaplaceMechanism(
                    instance.epsilon, region=instance.region
                )
                pool = NoiseDifferencePool(
                    instance.epsilon, n_samples=self.pool_samples, seed=rng
                )
                noisy_workers = laplace.obfuscate_many(
                    instance.worker_locations, rng
                )
                matcher = ProbMatcher(
                    noisy_workers,
                    instance.radii,
                    pool,
                    min_probability=self.min_probability,
                )
            matching = MatchingResult()
            for task_id in range(instance.n_tasks):
                with watch.timed():
                    noisy_task = laplace.obfuscate(
                        instance.task_locations[task_id], rng
                    )
                    found = matcher.assign(noisy_task)
                if found is None:
                    matching.unassigned_tasks.append(task_id)
                    continue
                worker, prob = found
                distance = self._true_distance(instance, task_id, worker)
                success = distance <= instance.radii[worker]
                matching.assignments.append(
                    Assignment(
                        task=task_id,
                        worker=worker,
                        distance=distance,
                        success=success,
                    )
                )
                if not success:
                    matcher.release(worker)
        return PipelineOutcome(
            algorithm=self.name,
            matching=matching,
            assignment_seconds=watch.elapsed,
            setup_seconds=setup.elapsed,
            peak_mib=mem["peak_mib"],
        )


class PSDPipeline(_BasePipeline):
    """Ablation baseline: Private Spatial Decomposition geocast (ref. [5]).

    The aggregate-DP approach the paper's related work argues is unfit for
    individual-location task assignment: the server only learns
    Laplace-noised per-cell worker counts (To et al., PVLDB'14), geocasts
    each task to a region whose noisy count reaches a target, and a random
    worker inside the region accepts. Workers' exact locations never leave
    the trusted aggregation step, so the guarantee is ε-DP over the worker
    set — a different (aggregate) trust model than Geo-I per report.
    Note the asymmetry: To et al. protect *workers only*; tasks reach the
    server in the clear, so PSD geocasts from exact task locations. Its
    distances can therefore look competitive while offering strictly less
    protection — exactly the contrast the paper's related work draws.
    """

    name = "PSD-GR"

    def __init__(
        self,
        height: int = 6,
        target_count: float = 2.0,
        max_expansions: int = 4,
    ) -> None:
        super().__init__(grid_nx=1)
        if max_expansions < 0:
            raise ValueError("max_expansions must be non-negative")
        self.height = height
        self.target_count = target_count
        self.max_expansions = max_expansions

    def run(self, instance: Instance, seed=None) -> PipelineOutcome:
        from ..privacy.psd import NoisyQuadtree

        rng = ensure_rng(seed)
        watch = Stopwatch()
        mem: dict = {}
        with measure_peak_memory(mem):
            setup = Stopwatch()
            with setup.timed():
                quadtree = NoisyQuadtree(
                    instance.region,
                    instance.worker_locations,
                    epsilon=instance.epsilon,
                    height=self.height,
                    seed=rng,
                )
                available = np.ones(instance.n_workers, dtype=bool)
                worker_cells = np.array(
                    [
                        quadtree.cell_of(loc, quadtree.height)
                        for loc in instance.worker_locations
                    ]
                )
            matching = MatchingResult()
            for task_id in range(instance.n_tasks):
                with watch.timed():
                    worker = self._geocast_assign(
                        instance, quadtree, worker_cells, available, task_id, rng
                    )
                if worker is None:
                    matching.unassigned_tasks.append(task_id)
                    continue
                available[worker] = False
                matching.assignments.append(
                    Assignment(
                        task=task_id,
                        worker=worker,
                        distance=self._true_distance(instance, task_id, worker),
                    )
                )
        return PipelineOutcome(
            algorithm=self.name,
            matching=matching,
            assignment_seconds=watch.elapsed,
            setup_seconds=setup.elapsed,
            peak_mib=mem["peak_mib"],
            details={"quadtree_height": quadtree.height},
        )

    def _geocast_assign(
        self, instance, quadtree, worker_cells, available, task_id, rng
    ):
        """Grow the geocast region until an available worker accepts."""
        task_loc = instance.task_locations[task_id]
        target = self.target_count
        for _ in range(self.max_expansions + 1):
            region = quadtree.geocast(task_loc, target_count=target)
            cell_set = set(region.cells)
            inside = [
                w
                for w in np.flatnonzero(available)
                if tuple(worker_cells[w]) in cell_set
            ]
            if inside:
                # a geocast is a broadcast: any worker inside may accept
                return int(rng.choice(inside))
            target *= 4.0
        return None


#: The three systems compared in the minimum-total-distance experiments.
MIN_DISTANCE_PIPELINES = (LapGRPipeline, LapHGPipeline, TBFPipeline)
#: The two systems compared in the matching-size case study.
SIZE_PIPELINES = (ProbPipeline, TBFSizePipeline)
